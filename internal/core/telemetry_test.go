package core

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cellgan/internal/telemetry"
)

// TestInstrumentedObserveAllocs is the hot-path tripwire for the metrics
// observation: recording an iteration and an exchange must not allocate,
// so instrumenting a run cannot disturb the training-loop alloc budget.
func TestInstrumentedObserveAllocs(t *testing.T) {
	reg := telemetry.NewRegistry()
	inst := newRunInstruments(reg, nil, 4)
	stats := IterStats{Iteration: 3, GenLoss: 0.7, DiscLoss: 0.6, MixtureFitness: 0.5, GenLR: 1e-3, GenReplaced: true}
	if allocs := testing.AllocsPerRun(100, func() {
		inst.observeIter(2, stats)
		inst.observeExchange(42 * time.Microsecond)
	}); allocs != 0 {
		t.Fatalf("instrumented observation allocates %.1f/op, want 0", allocs)
	}
	// The nil observer must also be free.
	var none *runInstruments
	if allocs := testing.AllocsPerRun(100, func() {
		none.observeIter(0, stats)
		none.observeExchange(time.Millisecond)
	}); allocs != 0 {
		t.Fatalf("nil observer allocates %.1f/op, want 0", allocs)
	}
}

func scrape(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	var b bytes.Buffer
	reg.WriteText(&b)
	return b.String()
}

func TestRunSequentialTelemetry(t *testing.T) {
	cfg := tinyConfig()
	reg := telemetry.NewRegistry()
	var trace bytes.Buffer
	tr := telemetry.NewTrace(&trace, cfg.Seed)
	res, err := RunSequential(cfg, RunOptions{Telemetry: reg, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	want := uint64(cfg.NumCells() * cfg.Iterations)
	got := scrape(t, reg)
	if !strings.Contains(got, "train_iterations_total 8") {
		t.Fatalf("train_iterations_total missing or wrong (want %d):\n%s", want, got)
	}
	if !strings.Contains(got, `train_cell_iteration{cell="0"} 2`) {
		t.Fatalf("per-cell iteration gauge missing:\n%s", got)
	}
	if !strings.Contains(got, "train_exchange_seconds_count") {
		t.Fatalf("exchange histogram missing:\n%s", got)
	}
	if n := strings.Count(trace.String(), `"event":"iter"`); n != int(want) {
		t.Fatalf("trace has %d iter events, want %d", n, want)
	}
	if res.Cells[0].Last.Iteration != cfg.Iterations {
		t.Fatalf("run did not complete: iteration %d", res.Cells[0].Last.Iteration)
	}
}

func TestRunSequentialStops(t *testing.T) {
	cfg := tinyConfig()
	cfg.Iterations = 50
	iters := 0
	res, err := RunSequential(cfg, RunOptions{
		Progress: func(rank int, _ IterStats) {
			if rank == cfg.NumCells()-1 {
				iters++
			}
		},
		Stop: func() bool { return iters >= 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Cells[0].Last.Iteration; got != 2 {
		t.Fatalf("stopped run reached iteration %d, want 2", got)
	}
	// The stopped state must stay resumable.
	if len(res.Full) != cfg.NumCells() || res.Full[0] == nil {
		t.Fatal("stopped run did not produce full states")
	}
}

func TestRunParallelStopConsensus(t *testing.T) {
	cfg := tinyConfig()
	cfg.Iterations = 50
	var done atomic.Int64
	res, err := RunParallel(cfg, RunOptions{
		Progress: func(int, IterStats) { done.Add(1) },
		// Trip after every rank finished iteration 1; the vote rides the
		// next allgather so all ranks must halt at the same boundary.
		Stop: func() bool { return done.Load() >= int64(cfg.NumCells()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Cells[0].Last.Iteration
	if first == cfg.Iterations {
		t.Fatal("run ignored the stop signal")
	}
	for _, c := range res.Cells {
		if c.Last.Iteration != first {
			t.Fatalf("ranks stopped at different iterations: %d vs %d", c.Last.Iteration, first)
		}
	}
	if len(res.Full) != cfg.NumCells() || res.Full[0] == nil {
		t.Fatal("stopped run did not produce full states")
	}
}

func TestRunAsyncStops(t *testing.T) {
	cfg := tinyConfig()
	cfg.Iterations = 50
	var stop atomic.Bool
	var done atomic.Int64
	res, err := RunAsync(cfg, RunOptions{
		Progress: func(int, IterStats) {
			if done.Add(1) >= int64(cfg.NumCells()) {
				stop.Store(true)
			}
		},
		Stop: stop.Load,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.Last.Iteration == cfg.Iterations {
			t.Fatal("a rank ignored the stop signal")
		}
	}
}

func TestRunParallelTelemetryMatchesSequentialResult(t *testing.T) {
	// Instrumentation must not change training results: an instrumented
	// parallel run and an uninstrumented one are bit-identical.
	cfg := tinyConfig()
	reg := telemetry.NewRegistry()
	a, err := RunParallel(cfg, RunOptions{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunParallel(cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		if a.Cells[i].MixtureFitness != b.Cells[i].MixtureFitness {
			t.Fatalf("cell %d fitness diverged: %v vs %v",
				i, a.Cells[i].MixtureFitness, b.Cells[i].MixtureFitness)
		}
	}
	if !strings.Contains(scrape(t, reg), "train_iterations_total 8") {
		t.Fatal("parallel run did not record iterations")
	}
}
