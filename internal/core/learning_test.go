package core

import (
	"testing"

	"cellgan/internal/config"
	"cellgan/internal/dataset"
	"cellgan/internal/grid"
	"cellgan/internal/metrics"
	"cellgan/internal/tensor"
)

// TestCoevolutionActuallyLearns is the end-to-end quality check: real
// training must move the generator mixture measurably toward the data
// distribution. Calibration runs at this scale show the Fréchet distance
// dropping ≈30% after 375 steps/cell (and to half after ~1500), so the
// 0.88 threshold leaves a wide margin while still failing if training
// stops working. Takes ~1.5 min; skipped under -short.
func TestCoevolutionActuallyLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("long learning test in -short mode")
	}
	cfg := config.Default()
	cfg.GridRows, cfg.GridCols = 2, 2
	cfg.Iterations = 25
	cfg.BatchesPerIteration = 15
	cfg.BatchSize = 50
	cfg.DatasetSize = 2000
	cfg.NeuronsPerHidden = 64
	cfg.InputNeurons = 32

	rng := tensor.NewRNG(123)
	cls, err := metrics.TrainClassifier(dataset.Train(cfg.Seed), metrics.DefaultClassifierOptions(), rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	score := func(m *Mixture) metrics.Report {
		t.Helper()
		gen := m.Sample(400, cfg.InputNeurons, rng.Split())
		rep, err := metrics.Evaluate(cls, gen, dataset.Test(cfg.Seed), 400)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	// Untrained baseline: a freshly initialised cell's mixture.
	g, err := grid.New(cfg.GridRows, cfg.GridCols)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewCell(cfg, 0, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseline := score(fresh.Mixture())

	res, err := RunParallel(cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mix, err := res.MixtureFor(res.BestRank)
	if err != nil {
		t.Fatal(err)
	}
	trained := score(mix)

	t.Logf("untrained: IS %.3f, Fréchet %.1f, modes %d", baseline.InceptionScore, baseline.Frechet, baseline.ModeCoverage)
	t.Logf("trained:   IS %.3f, Fréchet %.1f, modes %d", trained.InceptionScore, trained.Frechet, trained.ModeCoverage)

	if trained.Frechet > 0.88*baseline.Frechet {
		t.Fatalf("training reduced Fréchet only %.1f -> %.1f (want ≥12%% improvement)",
			baseline.Frechet, trained.Frechet)
	}
	if trained.InceptionScore < 1.05 {
		t.Fatalf("trained inception score %.3f barely above collapse", trained.InceptionScore)
	}
}
