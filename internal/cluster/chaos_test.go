package cluster

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"cellgan/internal/config"
	"cellgan/internal/mpi"
)

// chaosConfig is a fast resilient-mode configuration for a rows×cols grid.
func chaosConfig(rows, cols int) config.Config {
	cfg := config.Default().Scaled(2, 4, 64)
	cfg.GridRows = rows
	cfg.GridCols = cols
	return cfg
}

func chaosOptions(cfg config.Config, maxStrikes int) MasterOptions {
	opts := MasterOptions{
		Cfg:       cfg,
		Resilient: true,
		// The round deadline must stay comfortably above one training
		// iteration even when other test packages load the machine, or
		// healthy slaves risk being struck out. Strikes are additionally
		// progress-gated (only a slave lagging its peers is struck) and
		// eviction is strike-count-based, so determinism is unaffected.
		RoundTimeout:      time.Second,
		MaxStrikes:        maxStrikes,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
	}
	if raceEnabled {
		// The race detector slows everything ~10×; widen accordingly.
		opts.RoundTimeout = 3 * time.Second
		opts.HeartbeatInterval = 50 * time.Millisecond
		opts.HeartbeatTimeout = 10 * time.Second
	}
	return opts
}

// fingerprint reduces a job result to its schedule-determined content:
// everything except wall-clock artifacts (profiles, timings, logs) and
// placement labels.
func fingerprint(t *testing.T, res *JobResult) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "best=%d aborted=%v\n", res.BestCell, res.Aborted)
	for _, r := range res.Reports {
		fmt.Fprintf(&b, "cell=%d iters=%d fit=%x ranks=%v weights=%v state=%x full=%x err=%v\n",
			r.CellRank, r.Iterations, r.MixtureFitness, r.MixtureRanks, r.MixtureWeights,
			r.State, r.Full, r.Error != "")
	}
	return b.String()
}

// requireAllTrained asserts every grid cell reached the iteration target.
func requireAllTrained(t *testing.T, cfg config.Config, res *JobResult) {
	t.Helper()
	if len(res.Reports) != cfg.NumCells() {
		t.Fatalf("got %d reports for %d cells", len(res.Reports), cfg.NumCells())
	}
	for i, r := range res.Reports {
		if r.CellRank != i {
			t.Fatalf("report %d is for cell %d", i, r.CellRank)
		}
		if r.Iterations != cfg.Iterations {
			t.Fatalf("cell %d trained %d/%d iterations (error: %s)", i, r.Iterations, cfg.Iterations, r.Error)
		}
		if len(r.State) == 0 {
			t.Fatalf("cell %d has no final state", i)
		}
	}
}

func TestResilientJobNoFaults(t *testing.T) {
	cfg := chaosConfig(2, 2)
	res, err := RunJob(chaosOptions(cfg, 3))
	if err != nil {
		t.Fatal(err)
	}
	requireAllTrained(t, cfg, res)
	for i, r := range res.Reports {
		if r.Error != "" {
			t.Fatalf("cell %d failed: %s", i, r.Error)
		}
		if len(r.Full) == 0 {
			t.Fatalf("cell %d report lacks full state", i)
		}
	}
}

// TestChaosCrashRecovery3x3 is the acceptance scenario: a slave on a 3×3
// grid is killed mid-training; the master must evict it, re-dispatch its
// cell to a survivor from the last gathered state, and finish with all 9
// cells trained — reproducibly for the fixed (seed, schedule).
func TestChaosCrashRecovery3x3(t *testing.T) {
	cfg := chaosConfig(3, 3)
	plan := mpi.FaultPlan{
		Seed: 17,
		// Slave 5 dies after uploading its round-0 and round-1 state: the
		// crash is scheduled on the message count, not the clock.
		Crashes: []mpi.CrashPoint{{Rank: 5, Tag: tagStateUpdate, AfterSends: 2}},
	}
	run := func() *JobResult {
		res, err := RunJobChaos(chaosOptions(cfg, 3), plan)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	requireAllTrained(t, cfg, res)
	log := strings.Join(res.Log, "\n")
	if !strings.Contains(log, "evicting slave 5") {
		t.Fatalf("master never evicted the crashed slave; log:\n%s", log)
	}
	if !strings.Contains(log, "reassigned cell 4 from slave 5") {
		t.Fatalf("master never reassigned the lost cell; log:\n%s", log)
	}

	res2 := run()
	requireAllTrained(t, cfg, res2)
	if a, b := fingerprint(t, res), fingerprint(t, res2); a != b {
		t.Fatalf("crash recovery not reproducible for fixed (seed, schedule):\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}

// TestChaosScheduleSweep drives the resilient runtime through a sweep of
// fault schedules on 2×2 and 3×3 grids: the job must always complete with
// every cell trained, and content-preserving schedules (duplication,
// reordering delays) must reproduce bit-identical results.
func TestChaosScheduleSweep(t *testing.T) {
	cases := []struct {
		name          string
		rows, cols    int
		plan          mpi.FaultPlan
		maxStrikes    int
		deterministic bool
	}{
		{name: "drop", rows: 2, cols: 2, plan: ChaosPlan(101, 0.25, 0, 0), maxStrikes: 6},
		{name: "dup", rows: 2, cols: 2, plan: ChaosPlan(102, 0, 0.5, 0), maxStrikes: 4, deterministic: true},
		{name: "delay", rows: 2, cols: 2, plan: ChaosPlan(103, 0, 0, 0.5), maxStrikes: 4, deterministic: true},
		{name: "combo", rows: 2, cols: 2, plan: ChaosPlan(104, 0.15, 0.25, 0.3), maxStrikes: 6},
		{name: "combo-3x3", rows: 3, cols: 3, plan: ChaosPlan(105, 0.1, 0.2, 0.25), maxStrikes: 6},
		{
			name: "partition", rows: 2, cols: 2, maxStrikes: 6,
			// A one-way partition blacks out the master's neighbor sets to
			// slave 2 for two rounds; resends must heal it.
			plan: mpi.FaultPlan{
				Seed:       106,
				Partitions: []mpi.Partition{{From: 0, To: 2, Tag: tagNeighborSet, FromSeq: 1, ToSeq: 3}},
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := chaosConfig(tc.rows, tc.cols)
			res, err := RunJobChaos(chaosOptions(cfg, tc.maxStrikes), tc.plan)
			if err != nil {
				t.Fatal(err)
			}
			requireAllTrained(t, cfg, res)
			if tc.deterministic {
				res2, err := RunJobChaos(chaosOptions(cfg, tc.maxStrikes), tc.plan)
				if err != nil {
					t.Fatal(err)
				}
				if a, b := fingerprint(t, res), fingerprint(t, res2); a != b {
					t.Fatalf("schedule %q not reproducible:\n--- run 1\n%s\n--- run 2\n%s", tc.name, a, b)
				}
			}
		})
	}
}

// TestChaosResultMatchesFaultFree verifies recovery is semantically
// transparent for content-preserving faults: a dup/delay-chaos run yields
// the same trained cells as the fault-free resilient run.
func TestChaosResultMatchesFaultFree(t *testing.T) {
	cfg := chaosConfig(2, 2)
	clean, err := RunJob(chaosOptions(cfg, 4))
	if err != nil {
		t.Fatal(err)
	}
	chaotic, err := RunJobChaos(chaosOptions(cfg, 4), ChaosPlan(7, 0, 0.4, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean.Reports {
		if !bytes.Equal(clean.Reports[i].State, chaotic.Reports[i].State) {
			t.Fatalf("cell %d state diverged under dup/delay chaos", i)
		}
	}
}
