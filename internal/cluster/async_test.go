package cluster

import (
	"strings"
	"sync"
	"testing"
	"time"

	"cellgan/internal/config"
	"cellgan/internal/mpi"
)

// asyncConfig is a fast async-mode configuration for a rows×cols grid.
func asyncConfig(rows, cols, iterations int) config.Config {
	cfg := config.Default().Scaled(iterations, 4, 64)
	cfg.GridRows = rows
	cfg.GridCols = cols
	return cfg
}

func asyncOptions(cfg config.Config) MasterOptions {
	opts := MasterOptions{
		Cfg:   cfg,
		Async: true,
		// The stall nudge must stay above a few training iterations even
		// on a loaded machine, or it fires spuriously (harmless, but it
		// pollutes the log assertions).
		RoundTimeout:      time.Second,
		MaxStrikes:        3,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
	}
	if raceEnabled {
		opts.RoundTimeout = 3 * time.Second
		opts.HeartbeatInterval = 50 * time.Millisecond
		opts.HeartbeatTimeout = 10 * time.Second
	}
	return opts
}

func clearAsyncHooks() {
	asyncClusterHooks.onPush = nil
	asyncClusterHooks.onApply = nil
}

func TestAsyncJobNoFaults(t *testing.T) {
	cfg := asyncConfig(2, 2, 3)
	res, err := RunJob(asyncOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	requireAllTrained(t, cfg, res)
	for i, r := range res.Reports {
		if r.Error != "" {
			t.Fatalf("cell %d failed: %s", i, r.Error)
		}
		if len(r.Full) == 0 {
			t.Fatalf("cell %d report lacks full state", i)
		}
	}
}

// TestAsyncChaosPartitionNoStall drives the async runtime through fault
// schedules whose partition windows black out the peer-to-peer exchange
// streams for a while: the staleness gate must wait the partition out
// (the idle re-push heals the neighbour views once the window closes),
// never stall the job, and every cell must still reach the target.
func TestAsyncChaosPartitionNoStall(t *testing.T) {
	cases := []struct {
		name string
		plan mpi.FaultPlan
	}{
		{name: "drop", plan: AsyncChaosPlan(201, 0.3, 0, 0)},
		{name: "dup-delay", plan: AsyncChaosPlan(202, 0, 0.4, 0.4)},
		{name: "combo", plan: AsyncChaosPlan(203, 0.2, 0.25, 0.3)},
		{
			name: "partition",
			plan: func() mpi.FaultPlan {
				p := AsyncChaosPlan(204, 0.15, 0, 0.2)
				// Black out both directions of the 1↔2 exchange and the
				// 3→4 pushes for a stretch of each stream.
				p.Partitions = []mpi.Partition{
					{From: 1, To: 2, Tag: tagAsyncState, FromSeq: 1, ToSeq: 5},
					{From: 2, To: 1, Tag: tagAsyncState, FromSeq: 1, ToSeq: 5},
					{From: 3, To: 4, Tag: tagAsyncState, FromSeq: 2, ToSeq: 6},
				}
				return p
			}(),
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := asyncConfig(2, 2, 3)
			res, err := RunJobChaos(asyncOptions(cfg), tc.plan)
			if err != nil {
				t.Fatal(err)
			}
			requireAllTrained(t, cfg, res)
		})
	}
}

// TestAsyncJoinRebalance is the elastic-membership acceptance scenario
// without faults: a reserve slave joins once training is underway; the
// master must recall cells from the loaded owners, grant them to the
// joiner, and finish with all cells trained — none lost, and the joiner
// actually owning rebalanced cells.
func TestAsyncJoinRebalance(t *testing.T) {
	cfg := asyncConfig(2, 2, 6)
	runAsyncJoinJob(t, cfg, nil)
}

// TestAsyncJoinUnderChaos repeats the join scenario with drops, dups and
// delays on the exchange streams: the membership protocol must still
// hand the joiner its cells and the job must complete with zero lost
// cells.
func TestAsyncJoinUnderChaos(t *testing.T) {
	cfg := asyncConfig(2, 2, 6)
	plan := AsyncChaosPlan(205, 0.2, 0.2, 0.25)
	runAsyncJoinJob(t, cfg, &plan)
}

// runAsyncJoinJob runs a 1-reserve async job whose joiner is triggered by
// the first training pass, then asserts the join actually rebalanced.
func runAsyncJoinJob(t *testing.T, cfg config.Config, plan *mpi.FaultPlan) {
	t.Helper()
	defer clearAsyncHooks()
	joinCh := make(chan struct{})
	var once sync.Once
	asyncClusterHooks.onPush = func(cell, iter int) {
		if iter >= 1 {
			once.Do(func() { close(joinCh) })
		}
	}
	res, err := RunJobWithJoiners(asyncOptions(cfg), plan, []JoinSpec{{Signal: joinCh}})
	if err != nil {
		t.Fatal(err)
	}
	requireAllTrained(t, cfg, res)

	joiner := cfg.NumTasks() // the reserve's world rank
	log := strings.Join(res.Log, "\n")
	if !strings.Contains(log, "joining, rebalancing") {
		t.Fatalf("master never served the join; log:\n%s", log)
	}
	rebalanced := 0
	for _, line := range res.Log {
		if strings.Contains(line, "rebalanced cell") {
			rebalanced++
		}
	}
	if rebalanced == 0 {
		t.Fatalf("joiner %d received no cells; log:\n%s", joiner, log)
	}
	for i, r := range res.Reports {
		if strings.Contains(r.Error, "synthesized") {
			t.Fatalf("cell %d was lost (synthesized report: %s)", i, r.Error)
		}
	}
}

// TestAsyncChaosFitnessTolerance verifies chaos does not wreck training:
// the best mixture fitness of an async chaos run stays finite and within
// tolerance of the fault-free async run. Async training is scheduling-
// nondeterministic, so this is a sanity band, not a bit-exactness check.
func TestAsyncChaosFitnessTolerance(t *testing.T) {
	cfg := asyncConfig(2, 2, 3)
	clean, err := RunJob(asyncOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	chaotic, err := RunJobChaos(asyncOptions(cfg), AsyncChaosPlan(206, 0.2, 0.3, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	a, b := clean.Best().MixtureFitness, chaotic.Best().MixtureFitness
	if a >= inf() || b >= inf() {
		t.Fatalf("best fitness not finite: clean %v chaos %v", a, b)
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if diff > 2.5 {
		t.Fatalf("chaos fitness %v strayed %.3f from fault-free %v", b, diff, a)
	}
}

// TestAsyncClusterStalenessBound is the cluster form of the core
// staleness property: under the fault-free exchange no neighbour view
// ever regresses, and every applied snapshot is within the window S of
// its source's newest push.
func TestAsyncClusterStalenessBound(t *testing.T) {
	defer clearAsyncHooks()
	cfg := asyncConfig(2, 2, 6)
	cfg.AsyncStaleness = 3
	s := cfg.AsyncStaleness

	type pair struct{ cell, src int }
	var mu sync.Mutex
	lastPush := make(map[int]int)
	applied := make(map[pair]int)
	type violation struct {
		cell, src, iter, bound int
	}
	var bad []violation
	asyncClusterHooks.onPush = func(cell, iter int) {
		mu.Lock()
		if iter > lastPush[cell] {
			lastPush[cell] = iter
		}
		mu.Unlock()
	}
	asyncClusterHooks.onApply = func(cell, src, iter int) {
		mu.Lock()
		defer mu.Unlock()
		k := pair{cell, src}
		if prev, seen := applied[k]; seen && iter < prev {
			bad = append(bad, violation{cell, src, iter, prev})
		}
		if iter > applied[k] {
			applied[k] = iter
		}
		if pushed := lastPush[src]; pushed-iter > s {
			bad = append(bad, violation{cell, src, iter, pushed})
		}
	}
	res, err := RunJob(asyncOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	requireAllTrained(t, cfg, res)
	mu.Lock()
	defer mu.Unlock()
	if len(applied) == 0 {
		t.Fatal("no neighbour snapshots were applied")
	}
	if len(bad) > 0 {
		t.Fatalf("staleness bound S=%d violated %d times, first: %+v", s, len(bad), bad[0])
	}
}
