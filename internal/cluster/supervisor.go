package cluster

import (
	"fmt"
	"time"
)

// SuperviseOptions tunes the restart loop of Supervise.
type SuperviseOptions struct {
	// MaxRestarts is how many restarts are allowed after the first
	// attempt before the supervisor gives up; 0 defaults to 5.
	MaxRestarts int
	// InitialBackoff is the delay before the first restart; it doubles
	// after every failure up to MaxBackoff. 0 defaults to 100 ms.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential backoff; 0 defaults to 5 s.
	MaxBackoff time.Duration
	// Logf, when non-nil, receives one line per restart decision.
	Logf func(format string, args ...interface{})
	// Sleep replaces time.Sleep between attempts; nil uses the real
	// clock. Tests inject it to run the backoff schedule instantly.
	Sleep func(time.Duration)
}

// Supervise runs a job function until it succeeds, restarting it with
// exponential backoff after each failure — the master-side half of
// whole-job recovery. The function receives the attempt index (0 for
// the first run); restarted attempts are expected to resume from the
// newest durable checkpoint generation rather than start over, which is
// exactly what cmd/cluster -supervise does by re-launching itself with
// -resume. Returns nil on the first success, or the last error once
// MaxRestarts restarts are exhausted.
func Supervise(opts SuperviseOptions, run func(attempt int) error) error {
	if opts.MaxRestarts <= 0 {
		opts.MaxRestarts = 5
	}
	if opts.InitialBackoff <= 0 {
		opts.InitialBackoff = 100 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 5 * time.Second
	}
	sleep := opts.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	backoff := opts.InitialBackoff
	for attempt := 0; ; attempt++ {
		err := run(attempt)
		if err == nil {
			return nil
		}
		if attempt >= opts.MaxRestarts {
			return fmt.Errorf("cluster: supervised job failed after %d attempts: %w", attempt+1, err)
		}
		if opts.Logf != nil {
			opts.Logf("supervisor: attempt %d failed (%v), restarting in %s", attempt, err, backoff)
		}
		sleep(backoff)
		backoff *= 2
		if backoff > opts.MaxBackoff {
			backoff = opts.MaxBackoff
		}
	}
}
