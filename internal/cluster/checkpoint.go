package cluster

import (
	"fmt"

	"cellgan/internal/core"
)

// Master-side resume and periodic-checkpoint support. The master is the
// natural checkpoint agent for the cluster modes: in resilient mode it
// already gathers every cell's full state each round (a consistent cut
// by construction), and in async mode it merges the slaves' inventory
// uploads monotonically (a best-effort newest-wins snapshot). Resume is
// the inverse: the master seeds its per-cell view from a prior run's
// states and dispatches each one with its run task, so a whole job
// restarts bit-exactly from the last durable generation.

// validateResume checks the Resume/CheckpointEvery options before any
// mode-specific master runs.
func validateResume(opts MasterOptions) error {
	if opts.CheckpointEvery < 0 {
		return fmt.Errorf("cluster: negative CheckpointEvery %d", opts.CheckpointEvery)
	}
	if opts.Resume == nil {
		return nil
	}
	n := opts.Cfg.NumCells()
	if len(opts.Resume) != n {
		return fmt.Errorf("cluster: resume carries %d cell states, config needs %d", len(opts.Resume), n)
	}
	first := 0
	uniform := true
	for c, f := range opts.Resume {
		if f == nil {
			return fmt.Errorf("cluster: resume state for cell %d is nil", c)
		}
		if f.Cell.Rank != c {
			return fmt.Errorf("cluster: resume state %d is for cell %d", c, f.Cell.Rank)
		}
		if f.Cell.Iteration > opts.Cfg.Iterations {
			return fmt.Errorf("cluster: resume state for cell %d is at iteration %d, past the %d-iteration target",
				c, f.Cell.Iteration, opts.Cfg.Iterations)
		}
		if c == 0 {
			first = f.Cell.Iteration
		} else if f.Cell.Iteration != first {
			uniform = false
		}
	}
	if !uniform && !opts.Async {
		return fmt.Errorf("cluster: resume states mix iterations; only mode \"async\" accepts that")
	}
	return nil
}

// seedTrackFromResume primes the master's per-cell view with the resume
// states, so eviction re-dispatch, owner updates, the done check and
// periodic snapshots all see the restored iterations before the first
// upload arrives.
func seedTrackFromResume(track []*cellTrack, resume []*core.FullState) {
	for c, f := range resume {
		t := track[c]
		t.iter = f.Cell.Iteration
		t.full = f.Marshal()
		t.state = f.Cell.Marshal()
	}
}

// masterCkpt emits periodic whole-job snapshots from the master's merged
// inventory. Lockstep (resilient) captures fire exactly at cadence
// boundaries — every live cell sits at the same iteration k, so the
// snapshot is the same consistent cut the in-process collector takes.
// Async captures fire whenever the slowest cell has crossed a full
// cadence since the last snapshot; per-cell iterations across successive
// snapshots are monotonic because the master's merge is.
type masterCkpt struct {
	every    int
	lockstep bool
	sink     func(int, []*core.FullState) error
	logf     func(string, ...interface{})
	lastSunk int
}

// newMasterCkpt returns nil when no cadence is configured. A resumed job
// starts its cadence after the resume point, never re-emitting the
// generation it was loaded from.
func newMasterCkpt(opts MasterOptions, lockstep bool, logf func(string, ...interface{})) *masterCkpt {
	if opts.CheckpointEvery <= 0 || opts.CheckpointSink == nil {
		return nil
	}
	ck := &masterCkpt{every: opts.CheckpointEvery, lockstep: lockstep, sink: opts.CheckpointSink, logf: logf}
	if opts.Resume != nil {
		min := -1
		for _, f := range opts.Resume {
			if min < 0 || f.Cell.Iteration < min {
				min = f.Cell.Iteration
			}
		}
		ck.lastSunk = min
	}
	return ck
}

// observe checks the tracked inventory and emits a snapshot when due.
// Sink and decode failures skip the snapshot with a log line — a lost
// checkpoint must never kill the training run. Safe on a nil receiver.
func (ck *masterCkpt) observe(track []*cellTrack) {
	if ck == nil {
		return
	}
	min := -1
	for _, t := range track {
		if len(t.full) == 0 {
			return // some cell's state was never gathered yet
		}
		if min < 0 || t.iter < min {
			min = t.iter
		}
	}
	if min <= 0 {
		return
	}
	if ck.lockstep {
		if min%ck.every != 0 || min <= ck.lastSunk {
			return
		}
	} else if min < ck.lastSunk+ck.every {
		return
	}
	states := make([]*core.FullState, len(track))
	for c, t := range track {
		f, err := core.UnmarshalFullState(t.full)
		if err != nil {
			ck.logf("master: checkpoint at iteration %d skipped: cell %d state undecodable: %v", min, c, err)
			return
		}
		states[c] = f
	}
	ck.lastSunk = min
	if err := ck.sink(min, states); err != nil {
		ck.logf("master: checkpoint at iteration %d failed: %v", min, err)
	}
}
