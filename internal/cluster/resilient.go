package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cellgan/internal/core"
	"cellgan/internal/mpi"
	"cellgan/internal/profile"
	"cellgan/internal/telemetry"
)

// This file is the master side of the failure-tolerant runtime. In
// resilient mode the per-iteration neighbour exchange runs through the
// master in globally-synchronous rounds: every live slave uploads the full
// training state of its cells (tagStateUpdate), the master merges the grid
// view and answers with every cell's exchange state (tagNeighborSet), and
// the slaves train one iteration. Because the master always holds each
// cell's last full state, a slave that stops participating can be evicted
// and its cells re-dispatched to survivors, resuming bit-exactly.
//
// Eviction is deliberately driven by missed rounds, not heartbeat
// wall-clock timing: round progress is determined by the message schedule,
// so a chaos run with a fixed (seed, schedule) pair evicts the same slave
// in the same round every time. Strikes are progress-gated — a laggard is
// only struck once a peer has delivered the round, so machine-wide load
// (which slows every slave alike) cannot evict a healthy slave. The
// heartbeat thread still runs, but in resilient mode it only records
// Fig 2 state transitions and logs unresponsive slaves.

// retrySend sends with capped retries and exponential backoff, giving up
// immediately on permanent transport errors. Each re-sent attempt is
// counted in retries (nil-safe).
func retrySend(c *mpi.Comm, dst, tag int, data []byte, attempts int, backoff time.Duration, retries *telemetry.Counter) error {
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			retries.Inc()
		}
		if err = c.Send(dst, tag, data); err == nil {
			return nil
		}
		if errors.Is(err, mpi.ErrClosed) || errors.Is(err, mpi.ErrCrashed) {
			return err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	return err
}

// cellTrack is the master's view of one grid cell.
type cellTrack struct {
	owner   int    // slave rank currently training the cell
	iter    int    // highest iteration seen
	full    []byte // marshalled core.FullState at iter
	state   []byte // marshalled core.CellState extracted from full
	failed  bool
	errNote string
	fitness float64
}

func runMasterResilient(comm *mpi.Comm, opts MasterOptions) (*JobResult, error) {
	res := &JobResult{}
	started := time.Now()
	var logMu sync.Mutex
	logf := func(format string, args ...interface{}) {
		line := fmt.Sprintf(format, args...)
		logMu.Lock()
		res.Log = append(res.Log, line)
		logMu.Unlock()
		if opts.Logf != nil {
			opts.Logf("%s", line)
		}
	}
	nSlaves := comm.Size() - 1
	nCells := opts.Cfg.NumCells()

	// (i) Gather node names, tolerating slaves that died before start-up.
	names := make([]string, nSlaves+1)
	names[0] = "master"
	got := 0
	nameDeadline := time.Now().Add(opts.HeartbeatTimeout)
	for got < nSlaves {
		left := time.Until(nameDeadline)
		if left <= 0 {
			break
		}
		m, err := comm.RecvTimeout(mpi.AnySource, tagNodeName, left)
		if err != nil {
			break
		}
		if names[m.Src] == "" {
			names[m.Src] = string(m.Data)
			got++
		}
	}
	for s := 1; s <= nSlaves; s++ {
		if names[s] == "" {
			names[s] = "unknown"
		}
	}
	logf("master: gathered %d/%d slave node names", got, nSlaves)

	// (ii)+(iii) Placement.
	placements, err := Allocate(opts.Inventory, comm.Size(), opts.Cfg.MemoryPerTaskMB)
	if err != nil {
		return nil, err
	}
	res.Placements = placements
	logf("master: placed %d tasks on %d nodes (%d MB total)",
		comm.Size(), len(Summary(placements)), opts.Cfg.MemoryMB())

	// (iv) Dispatch resilient run tasks with send retry.
	for s := 1; s <= nSlaves; s++ {
		task := runTask{
			Cfg: opts.Cfg, CellRank: s - 1,
			Node: placements[s].Node, Core: placements[s].Core,
			Resilient: true,
		}
		if opts.Resume != nil {
			task.Full = opts.Resume[s-1].Marshal()
		}
		payload, err := task.marshal()
		if err != nil {
			return nil, err
		}
		if err := retrySend(comm, s, tagRunTask, payload, 4, 10*time.Millisecond, opts.Metrics.SendRetries); err != nil {
			// A slave that never starts will be struck out of the first
			// round and its cell re-dispatched; the job survives.
			logf("master: sending run task to slave %d failed: %v", s, err)
		}
	}
	logf("master: sent resilient run task to %d slaves", nSlaves)

	// Liveness set, shared with the heartbeat thread.
	var liveMu sync.Mutex
	live := make(map[int]bool, nSlaves)
	for s := 1; s <= nSlaves; s++ {
		live[s] = true
	}
	opts.Metrics.LiveSlaves.Set(float64(nSlaves))
	isLive := func(s int) bool {
		liveMu.Lock()
		defer liveMu.Unlock()
		return live[s]
	}
	liveCount := func() int {
		liveMu.Lock()
		defer liveMu.Unlock()
		n := 0
		for _, ok := range live {
			if ok {
				n++
			}
		}
		return n
	}

	track := make([]*cellTrack, nCells)
	for c := 0; c < nCells; c++ {
		track[c] = &cellTrack{owner: c + 1, fitness: inf()}
	}
	if opts.Resume != nil {
		seedTrackFromResume(track, opts.Resume)
		logf("master: resumed %d cells from iteration %d", nCells, track[0].iter)
	}
	ck := newMasterCkpt(opts, true, logf)

	// Heartbeat thread: advisory in resilient mode — it records state
	// transitions and logs unresponsive slaves, but never fails the job
	// (eviction is the round loop's deterministic decision).
	states := make([]SlaveState, nSlaves+1)
	var transMu sync.Mutex
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		for {
			for s := 1; s <= nSlaves; s++ {
				select {
				case <-hbStop:
					return
				default:
				}
				if !isLive(s) {
					continue
				}
				if err := comm.Send(s, tagStatus, nil); err != nil {
					continue
				}
				m, err := comm.RecvTimeout(s, tagStatus, opts.HeartbeatTimeout)
				if err != nil || len(m.Data) == 0 {
					logf("heartbeat: slave %d unresponsive", s)
					continue
				}
				opts.Metrics.Heartbeats.Inc()
				st := SlaveState(m.Data[0])
				if st != states[s] {
					transMu.Lock()
					res.Transitions = append(res.Transitions, Transition{Slave: s, From: states[s], To: st, At: time.Now()})
					transMu.Unlock()
					logf("heartbeat: slave %d %s -> %s", s, states[s], st)
					states[s] = st
				}
			}
			select {
			case <-hbStop:
				return
			case <-time.After(opts.HeartbeatInterval):
			}
		}
	}()
	stopHeartbeat := func() {
		close(hbStop)
		hbWG.Wait()
	}

	// evict removes a slave and re-dispatches its cells to the live
	// survivor owning the fewest cells (lowest rank breaks ties) — a
	// deterministic choice.
	adoptQueue := make(map[int][]cellBlob)
	evict := func(s int, why string) {
		liveMu.Lock()
		live[s] = false
		liveMu.Unlock()
		opts.Metrics.Evictions.Inc()
		logf("master: evicting slave %d (%s)", s, why)
		comm.Send(s, tagShutdown, nil) //nolint:errcheck // best-effort zombie release
		owned := func(sl int) int {
			n := 0
			for _, t := range track {
				if t.owner == sl {
					n++
				}
			}
			return n
		}
		for c, t := range track {
			if t.owner != s {
				continue
			}
			survivor := 0
			for cand := 1; cand <= nSlaves; cand++ {
				if !isLive(cand) {
					continue
				}
				if survivor == 0 || owned(cand) < owned(survivor) {
					survivor = cand
				}
			}
			if survivor == 0 {
				return // no survivors; the round loop errors out
			}
			t.owner = survivor
			opts.Metrics.Redispatches.Inc()
			adoptQueue[survivor] = append(adoptQueue[survivor], cellBlob{
				CellRank: c, Iteration: t.iter, Full: t.full,
				Failed: t.failed, Error: t.errNote, Fitness: t.fitness,
			})
			logf("master: reassigned cell %d from slave %d to slave %d (re-dispatching from iteration %d)",
				c, s, survivor, t.iter)
		}
		opts.Metrics.LiveSlaves.Set(float64(liveCount()))
	}

	// The synchronous round loop.
	target := opts.Cfg.Iterations
	jobDeadline := time.Time{}
	if opts.Cfg.TimeLimit > 0 {
		jobDeadline = started.Add(opts.Cfg.TimeLimit)
	}
	lastNS := make(map[int][]byte)
	strikes := make(map[int]int)
	round := 0
	for {
		// Collect this round's update from every live slave. A timeout
		// strikes all laggards; MaxStrikes consecutive misses evict.
		reported := make(map[int]bool)
		barren := 0 // consecutive timeouts with no report at all this round
		for {
			pending := 0
			for s := 1; s <= nSlaves; s++ {
				if isLive(s) && !reported[s] {
					pending++
				}
			}
			if pending == 0 {
				break
			}
			m, err := comm.RecvTimeout(mpi.AnySource, tagStateUpdate, opts.RoundTimeout)
			if err != nil {
				for s := 1; s <= nSlaves; s++ {
					if !isLive(s) || reported[s] {
						continue
					}
					// Strike only when a peer has already made this round:
					// a laggard is a slave that falls behind the others, not
					// one slowed by machine-wide load. When nobody reported,
					// the nudge below is still sent (updates may all have
					// been lost in transit) but strikes accrue on a 4× more
					// patient schedule — that fallback is what eventually
					// fails a job whose every slave died.
					if len(reported) > 0 || barren >= 4*opts.MaxStrikes {
						strikes[s]++
						if strikes[s] >= opts.MaxStrikes {
							evict(s, fmt.Sprintf("missed %d consecutive rounds", strikes[s]))
							continue
						}
					}
					// Nudge: the update or the previous neighbor set may
					// have been lost — re-request and re-send.
					comm.Send(s, tagStateResend, nil) //nolint:errcheck
					if p := lastNS[s]; p != nil {
						comm.Send(s, tagNeighborSet, p) //nolint:errcheck
					}
				}
				if len(reported) == 0 {
					barren++
				}
				continue
			}
			if !isLive(m.Src) {
				continue // late message from an evicted slave
			}
			upd, err := parseStateUpdate(m.Data)
			if err != nil {
				logf("master: bad state update from slave %d: %v", m.Src, err)
				continue
			}
			opts.Metrics.StateUpdates.Inc()
			// Merge monotonically: training is deterministic, so for a
			// given iteration count the state content is unique and
			// duplicate or late uploads are harmless.
			for _, cb := range upd.Cells {
				if cb.CellRank < 0 || cb.CellRank >= nCells {
					continue
				}
				t := track[cb.CellRank]
				if cb.Iteration < t.iter {
					continue
				}
				t.iter = cb.Iteration
				t.full = cb.Full
				if f, ferr := core.UnmarshalFullState(cb.Full); ferr == nil {
					t.state = f.Cell.Marshal()
				}
				t.failed = cb.Failed
				t.errNote = cb.Error
				t.fitness = cb.Fitness
			}
			if upd.Round == round {
				reported[m.Src] = true
				strikes[m.Src] = 0
			}
		}
		if liveCount() == 0 {
			stopHeartbeat()
			return nil, fmt.Errorf("cluster: all %d slaves lost, job cannot complete", nSlaves)
		}

		// Round complete: decide whether training is over and publish the
		// merged grid view. The completed round is a consistent cut — every
		// live cell's gathered state sits at the same iteration — so this is
		// where a periodic checkpoint is taken.
		opts.Metrics.Rounds.Inc()
		ck.observe(track)
		abortNow := interrupted(opts.Interrupt) ||
			(!jobDeadline.IsZero() && time.Now().After(jobDeadline))
		done := true
		for _, t := range track {
			if !t.failed && t.iter < target {
				done = false
				break
			}
		}
		done = done || abortNow
		ns := neighborSet{Round: round, Done: done, Abort: abortNow}
		for c := 0; c < nCells; c++ {
			if track[c].state == nil {
				continue
			}
			ns.States = append(ns.States, wireState{Rank: c, Iter: track[c].iter, Data: track[c].state})
		}
		for s := 1; s <= nSlaves; s++ {
			if !isLive(s) {
				continue
			}
			nsS := ns
			nsS.Adopt = adoptQueue[s]
			adoptQueue[s] = nil // future resends carry it via lastNS
			payload, merr := nsS.marshal()
			if merr != nil {
				stopHeartbeat()
				return nil, merr
			}
			lastNS[s] = payload
			if err := retrySend(comm, s, tagNeighborSet, payload, 4, 10*time.Millisecond, opts.Metrics.SendRetries); err != nil {
				logf("master: neighbor set to slave %d failed: %v", s, err)
			}
		}
		if done {
			if abortNow {
				res.Aborted = true
				why := "time limit exceeded"
				if interrupted(opts.Interrupt) {
					why = "interrupted"
				}
				logf("master: %s, finishing round %d with abort", why, round)
			}
			logf("master: training done after round %d, collecting results", round)
			break
		}
		round++
	}

	// Collect reports from the survivors, retrying while they finalise
	// (an empty reply means "not finished yet").
	prof := profile.New()
	res.Reports = make([]SlaveReport, nCells)
	gotCell := make([]bool, nCells)
	for s := 1; s <= nSlaves; s++ {
		if !isLive(s) {
			continue
		}
		backoff := 20 * time.Millisecond
		collected := false
		for attempt := 0; attempt < 3*opts.MaxStrikes && !collected; attempt++ {
			if err := comm.Send(s, tagCollect, nil); err != nil {
				break
			}
			m, err := comm.RecvTimeout(s, tagResult, opts.RoundTimeout)
			if err != nil || len(m.Data) == 0 {
				// Lost collect or slave still finalising: re-send the
				// Done round and back off.
				if p := lastNS[s]; p != nil {
					comm.Send(s, tagNeighborSet, p) //nolint:errcheck
				}
				time.Sleep(backoff)
				if backoff < 500*time.Millisecond {
					backoff *= 2
				}
				continue
			}
			reps, perr := parseSlaveReports(m.Data)
			if perr != nil {
				logf("master: bad report from slave %d: %v", s, perr)
				break
			}
			for _, rep := range reps {
				if rep.CellRank < 0 || rep.CellRank >= nCells || gotCell[rep.CellRank] {
					continue
				}
				res.Reports[rep.CellRank] = rep
				gotCell[rep.CellRank] = true
				if snap, derr := profile.DecodeSnapshot(rep.Profile); derr == nil {
					prof.Merge(snap)
				}
				if rep.Aborted {
					res.Aborted = true
				}
			}
			collected = true
		}
		if !collected {
			logf("master: slave %d never delivered its reports", s)
		}
	}

	// Synthesize reports for cells whose final owner died after training:
	// the master's merged view still holds their last full state.
	for c := 0; c < nCells; c++ {
		if gotCell[c] {
			continue
		}
		t := track[c]
		rep := SlaveReport{
			CellRank: c, Node: "recovered", Iterations: t.iter,
			MixtureFitness: t.fitness, State: t.state, Full: t.full,
			Error: fmt.Sprintf("report synthesized from master state (owner slave %d lost); %s", t.owner, t.errNote),
		}
		if t.failed || t.iter == 0 {
			rep.MixtureFitness = inf()
		}
		if f, ferr := core.UnmarshalFullState(t.full); ferr == nil {
			rep.MixtureRanks = append([]int(nil), f.MixtureRanks...)
			rep.MixtureWeights = append([]float64(nil), f.MixtureWeights...)
		}
		res.Reports[c] = rep
		logf("master: synthesized report for cell %d at iteration %d", c, t.iter)
	}

	for s := 1; s <= nSlaves; s++ {
		if isLive(s) {
			comm.Send(s, tagShutdown, nil) //nolint:errcheck
		}
	}
	stopHeartbeat()

	best := 0
	for i, r := range res.Reports {
		if r.MixtureFitness < res.Reports[best].MixtureFitness {
			best = i
		}
	}
	res.BestCell = res.Reports[best].CellRank
	res.Profile = prof.Snapshot()
	res.Elapsed = time.Since(started)
	logf("master: best cell %d (mixture fitness %.4f), elapsed %s",
		res.BestCell, res.Reports[best].MixtureFitness, res.Elapsed.Round(time.Millisecond))
	return res, nil
}
