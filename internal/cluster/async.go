package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cellgan/internal/core"
	"cellgan/internal/mpi"
	"cellgan/internal/profile"
)

// This file is the asynchronous cluster exchange: the distributed form of
// core.RunAsync. Each slave trains its cells at its own pace and pushes
// center snapshots directly to the owners of each cell's influence set
// (tagAsyncState) — no rounds, no barrier, no master round-trip on the
// exchange path. Divergence is capped by the same bounded-staleness
// window S the in-process mode uses: a cell skips its next iteration
// while some live neighbour's last absorbed snapshot would end up more
// than S versions behind, and a per-(cell, source) core.StalenessTracker
// guarantees a delayed or duplicated push can never regress a neighbour
// view.
//
// The master's job shrinks to inventory and membership: it merges the
// slaves' periodic full-state uploads (so it always holds every cell's
// last state, exactly like resilient mode), decides when training is
// done, and runs the elastic join protocol — the inverse of resilient
// eviction. A connected-but-idle reserve slave asks to join (tagJoin);
// the master picks cells from the most loaded owners, recalls their
// state (tagRelease / tagReleaseAck), and grants them to the joiner with
// seed snapshots so it can start exchanging immediately (tagOwnerUpdate,
// also broadcast so every peer re-aims its pushes).

// asyncUploadEvery is how often an async slave re-uploads its inventory
// and re-pushes its cell states when idle — the liveness backstop that
// rides out dropped pushes and partition windows.
const asyncUploadEvery = 50 * time.Millisecond

// asyncIdleSleep is the execution-thread poll interval when no owned
// cell can make progress (all gated, finished, or none owned yet).
const asyncIdleSleep = time.Millisecond

// asyncMasterPoll is the master's poll interval between mailbox drains.
const asyncMasterPoll = 2 * time.Millisecond

// asyncMasterDrainMax caps how many state updates the master merges per
// poll pass. Merging is slower than four-plus slaves can upload, so an
// unbounded drain would starve the join queue and the done check until
// training ends.
const asyncMasterDrainMax = 32

// asyncClusterHooks observe the cluster exchange from tests. Set before
// a job starts and never mutated during one; nil fields are skipped.
var asyncClusterHooks struct {
	// onPush fires after cell's owner pushes its snapshot at iter.
	onPush func(cell, iter int)
	// onApply fires after a slave applies src's snapshot at iter to the
	// neighbour view of an owned cell.
	onApply func(cell, src, iter int)
}

// executeAsync is the execution thread of an async-mode slave: a single
// goroutine multiplexing every owned cell through absorb → gate →
// iterate → push passes, growing and shrinking its owned set as owner
// updates and release orders arrive from the control loop.
func (s *slave) executeAsync(task runTask) {
	defer close(s.done)
	defer s.setState(StateFinished)

	prof := profile.New()
	finishErr := func(err error) {
		cellRank := task.CellRank
		if cellRank < 0 {
			cellRank = 0
		}
		s.updMu.Lock()
		s.reports = []SlaveReport{{
			CellRank: cellRank, Node: task.Node,
			MixtureFitness: inf(), Error: err.Error(),
		}}
		s.updMu.Unlock()
	}

	g, err := core.BuildGridFor(task.Cfg)
	if err != nil {
		finishErr(err)
		return
	}
	myRank := s.world.Rank()
	nCells := task.Cfg.NumCells()
	target := task.Cfg.Iterations
	staleness := task.Cfg.EffectiveAsyncStaleness()

	owned := make(map[int]*core.Cell)
	trackers := make(map[int]*core.StalenessTracker)
	nbSets := make(map[int][]int) // per owned cell: neighbourhood minus self
	failed := make(map[int]bool)  // owned cells whose training errored
	errNote := make(map[int]string)
	fitness := make(map[int]float64)
	failedGlobal := make(map[int]bool) // any cell marked failed by the master
	owners := make([]int, nCells)
	for c := range owners {
		owners[c] = c + 1 // the initial one-cell-per-slave assignment
	}

	adopt := func(rank int, full []byte, adFailed bool, adErr string, adFit float64) error {
		if _, ok := owned[rank]; ok {
			return nil
		}
		c, err := core.NewCell(task.Cfg, rank, g, prof)
		if err != nil {
			return err
		}
		if len(full) > 0 {
			f, err := core.UnmarshalFullState(full)
			if err != nil {
				return err
			}
			if err := c.RestoreFull(f); err != nil {
				return err
			}
		}
		owned[rank] = c
		trackers[rank] = core.NewStalenessTracker(staleness)
		var nbs []int
		for _, n := range g.Neighborhood(rank) {
			if n != rank {
				nbs = append(nbs, n)
			}
		}
		nbSets[rank] = nbs
		failed[rank] = adFailed
		if adErr != "" {
			errNote[rank] = adErr
		}
		fitness[rank] = adFit
		return nil
	}
	drop := func(rank int) {
		delete(owned, rank)
		delete(trackers, rank)
		delete(nbSets, rank)
		delete(failed, rank)
		delete(errNote, rank)
		delete(fitness, rank)
	}

	if !task.Joiner {
		// task.Full is empty on a fresh start and carries the cell's
		// resume state after a whole-job restart.
		if err := adopt(task.CellRank, task.Full, false, "", inf()); err != nil {
			finishErr(err)
			return
		}
	}

	// applyState refreshes the neighbour view of every owned cell whose
	// neighbourhood contains the snapshot's rank, guarded per
	// (cell, source) by the cross-drain staleness tracker.
	applyState := func(st *core.CellState) error {
		for _, r := range sortedRanks(owned) {
			if st.Rank == r {
				continue
			}
			tr := trackers[r]
			member := false
			for _, n := range nbSets[r] {
				if n == st.Rank {
					member = true
					break
				}
			}
			if !member || !tr.ShouldApply(st.Rank, st.Iteration) {
				continue
			}
			if err := owned[r].UpdateNeighbor(st); err != nil {
				return err
			}
			tr.MarkApplied(st.Rank, st.Iteration)
			if h := asyncClusterHooks.onApply; h != nil {
				h(r, st.Rank, st.Iteration)
			}
		}
		return nil
	}

	// push sends one owned cell's snapshot to the distinct owners of its
	// influence set. Best-effort: a lost push is healed by the idle
	// re-push, and co-owned neighbours are refreshed locally instead.
	push := func(r int) error {
		st, err := owned[r].State()
		if err != nil {
			return err
		}
		payload := st.Marshal()
		sent := make(map[int]bool)
		for _, d := range g.Influence(r) {
			o := owners[d]
			if o == 0 || o == myRank || sent[o] {
				continue
			}
			sent[o] = true
			s.world.Send(o, tagAsyncState, payload) //nolint:errcheck
		}
		if h := asyncClusterHooks.onPush; h != nil {
			h(r, st.Iteration)
		}
		return applyState(st) // co-owned neighbours see it immediately
	}

	// upload sends the master a fresh inventory of every owned cell and
	// caches it for tagStateResend.
	pass := 0
	upload := func() error {
		upd := stateUpdate{Slave: myRank, Round: pass}
		for _, r := range sortedRanks(owned) {
			c := owned[r]
			f, err := c.FullState()
			if err != nil {
				return err
			}
			upd.Cells = append(upd.Cells, cellBlob{
				CellRank: r, Iteration: c.Iteration(), Full: f.Marshal(),
				Failed: failed[r], Error: errNote[r], Fitness: fitness[r],
			})
		}
		payload, err := upd.marshal()
		if err != nil {
			return err
		}
		s.updMu.Lock()
		s.latestUpdate = payload
		s.updMu.Unlock()
		s.world.Send(0, tagStateUpdate, payload) //nolint:errcheck
		return nil
	}

	version := -1
	doneFlag, abortFlag := false, false
	lastUpload := time.Time{}
	for {
		// (1) Control messages from the master, via the control loop.
		for ctl := true; ctl; {
			select {
			case u := <-s.ownerCh:
				if u.Version < version || len(u.Owners) != nCells {
					continue // stale resend or foreign-grid noise
				}
				version = u.Version
				copy(owners, u.Owners)
				for _, c := range u.Failed {
					failedGlobal[c] = true
				}
				for _, ad := range u.Adopt {
					if err := adopt(ad.CellRank, ad.Full, ad.Failed, ad.Error, ad.Fitness); err != nil {
						finishErr(err)
						return
					}
				}
				// The catch-all for a release lost mid-flight: ownership
				// says the cell is elsewhere, so stop training it.
				for _, r := range sortedRanks(owned) {
					if owners[r] != myRank {
						drop(r)
					}
				}
				for i := range u.States {
					st, err := core.UnmarshalCellState(u.States[i].Data)
					if err != nil {
						continue // a seed is advisory, never fatal
					}
					if err := applyState(st); err != nil {
						finishErr(err)
						return
					}
				}
				if u.Done {
					doneFlag = true
					abortFlag = u.Abort
				}
			case r := <-s.releaseCh:
				// Return the released cells' state and stop training
				// them; the ack echoes the order's version in Round.
				ack := stateUpdate{Slave: myRank, Round: r.Version}
				for _, cr := range r.Cells {
					c, ok := owned[cr]
					if !ok {
						continue
					}
					f, err := c.FullState()
					if err != nil {
						finishErr(err)
						return
					}
					ack.Cells = append(ack.Cells, cellBlob{
						CellRank: cr, Iteration: c.Iteration(), Full: f.Marshal(),
						Failed: failed[cr], Error: errNote[cr], Fitness: fitness[cr],
					})
					drop(cr)
				}
				payload, err := ack.marshal()
				if err != nil {
					finishErr(err)
					return
				}
				if err := retrySend(s.world, 0, tagReleaseAck, payload, 4, 10*time.Millisecond, nil); err != nil {
					finishErr(err)
					return
				}
			case <-s.quit:
				finishErr(fmt.Errorf("cluster: slave %d control loop exited mid-run", myRank))
				return
			default:
				ctl = false
			}
		}

		// (2) Absorb peer pushes.
		for {
			m, ok, err := s.world.TryRecv(mpi.AnySource, tagAsyncState)
			if err != nil {
				finishErr(err)
				return
			}
			if !ok {
				break
			}
			st, err := core.UnmarshalCellState(m.Data)
			if err != nil {
				continue // corrupt push; peers re-push
			}
			if err := applyState(st); err != nil {
				finishErr(err)
				return
			}
		}

		if doneFlag {
			s.finalizeResilient(task, owned, failed, errNote, fitness, abortFlag, prof)
			return
		}

		// (3) One training pass: iterate every owned cell that is
		// unfinished, unfailed and within the staleness window. Gated
		// cells are skipped, never blocked on — other owned cells and
		// the absorb loop keep running.
		progressed := false
		for _, r := range sortedRanks(owned) {
			c := owned[r]
			if failed[r] || s.abort.Load() || c.Iteration() >= target {
				continue
			}
			gate := nbSets[r][:0:0]
			for _, n := range nbSets[r] {
				if !failedGlobal[n] {
					gate = append(gate, n)
				}
			}
			if len(trackers[r].Stale(c.Iteration()+1, gate)) > 0 {
				continue
			}
			stats, err := c.Iterate()
			if err != nil {
				failed[r] = true
				errNote[r] = err.Error()
				continue
			}
			fitness[r] = stats.MixtureFitness
			progressed = true
			if err := push(r); err != nil {
				finishErr(err)
				return
			}
		}
		pass++

		// (4) Inventory upload: after progress, and periodically while
		// idle so the master still converges under dropped uploads. The
		// idle branch also re-pushes owned states — the liveness valve
		// that ends a partition-starved gate.
		if progressed || time.Since(lastUpload) >= asyncUploadEvery {
			if !progressed {
				for _, r := range sortedRanks(owned) {
					if err := push(r); err != nil {
						finishErr(err)
						return
					}
				}
			}
			if err := upload(); err != nil {
				finishErr(err)
				return
			}
			lastUpload = time.Now()
		}
		if !progressed {
			select {
			case <-s.quit:
				finishErr(fmt.Errorf("cluster: slave %d control loop exited mid-run", myRank))
				return
			case <-time.After(asyncIdleSleep):
			}
		}
	}
}

// runMasterAsync is the master role of the asynchronous mode: merge
// inventory uploads, serve joins, detect completion, collect reports.
func runMasterAsync(comm *mpi.Comm, opts MasterOptions) (*JobResult, error) {
	res := &JobResult{}
	started := time.Now()
	var logMu sync.Mutex
	logf := func(format string, args ...interface{}) {
		line := fmt.Sprintf(format, args...)
		logMu.Lock()
		res.Log = append(res.Log, line)
		logMu.Unlock()
		if opts.Logf != nil {
			opts.Logf("%s", line)
		}
	}
	nSlaves := comm.Size() - 1 // workers plus connected reserves
	nCells := opts.Cfg.NumCells()
	target := opts.Cfg.Iterations

	// (i) Node names from every connected rank, reserves included.
	names := make([]string, nSlaves+1)
	names[0] = "master"
	got := 0
	nameDeadline := time.Now().Add(opts.HeartbeatTimeout)
	for got < nSlaves {
		left := time.Until(nameDeadline)
		if left <= 0 {
			break
		}
		m, err := comm.RecvTimeout(mpi.AnySource, tagNodeName, left)
		if err != nil {
			break
		}
		if names[m.Src] == "" {
			names[m.Src] = string(m.Data)
			got++
		}
	}
	logf("master: gathered %d/%d node names (%d reserve slots)", got, nSlaves, nSlaves-nCells)

	// (ii)+(iii) Placement over the full world, reserves included.
	placements, err := Allocate(opts.Inventory, comm.Size(), opts.Cfg.MemoryPerTaskMB)
	if err != nil {
		return nil, err
	}
	res.Placements = placements
	logf("master: placed %d tasks on %d nodes (%d MB total)",
		comm.Size(), len(Summary(placements)), opts.Cfg.MemoryMB())

	// (iv) Dispatch async run tasks to the initial workers only; the
	// reserves idle until they ask to join.
	for s := 1; s <= nCells; s++ {
		task := runTask{
			Cfg: opts.Cfg, CellRank: s - 1,
			Node: placements[s].Node, Core: placements[s].Core,
			Async: true,
		}
		if opts.Resume != nil {
			task.Full = opts.Resume[s-1].Marshal()
		}
		payload, err := task.marshal()
		if err != nil {
			return nil, err
		}
		if err := retrySend(comm, s, tagRunTask, payload, 4, 10*time.Millisecond, opts.Metrics.SendRetries); err != nil {
			logf("master: sending run task to slave %d failed: %v", s, err)
		}
	}
	logf("master: sent async run task to %d slaves", nCells)

	// Membership, shared with the heartbeat thread.
	var actMu sync.Mutex
	active := make(map[int]bool, nSlaves)
	for s := 1; s <= nCells; s++ {
		active[s] = true
	}
	isActive := func(s int) bool {
		actMu.Lock()
		defer actMu.Unlock()
		return active[s]
	}
	activeRanks := func() []int {
		actMu.Lock()
		defer actMu.Unlock()
		var out []int
		for s, ok := range active {
			if ok {
				out = append(out, s)
			}
		}
		sort.Ints(out)
		return out
	}
	opts.Metrics.LiveSlaves.Set(float64(nCells))

	track := make([]*cellTrack, nCells)
	for c := 0; c < nCells; c++ {
		track[c] = &cellTrack{owner: c + 1, fitness: inf()}
	}
	if opts.Resume != nil {
		seedTrackFromResume(track, opts.Resume)
		logf("master: resumed %d cells (iterations %v)", nCells, func() []int {
			its := make([]int, nCells)
			for c, t := range track {
				its[c] = t.iter
			}
			return its
		}())
	}
	ck := newMasterCkpt(opts, false, logf)
	merge := func(cells []cellBlob) bool {
		advanced := false
		for _, cb := range cells {
			if cb.CellRank < 0 || cb.CellRank >= nCells {
				continue
			}
			t := track[cb.CellRank]
			if cb.Iteration < t.iter {
				continue
			}
			if cb.Iteration > t.iter {
				advanced = true
			}
			t.iter = cb.Iteration
			t.full = cb.Full
			// Decoding the full state costs tens of milliseconds per cell,
			// so the center snapshot for owner updates is derived lazily in
			// buildOU; here only the blob and the bookkeeping move.
			t.state = nil
			t.failed = cb.Failed
			t.errNote = cb.Error
			t.fitness = cb.Fitness
		}
		return advanced
	}

	// Advisory heartbeat over the active set (Fig 2 transitions only).
	states := make([]SlaveState, nSlaves+1)
	var transMu sync.Mutex
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		for {
			for _, s := range activeRanks() {
				select {
				case <-hbStop:
					return
				default:
				}
				if err := comm.Send(s, tagStatus, nil); err != nil {
					continue
				}
				m, err := comm.RecvTimeout(s, tagStatus, opts.HeartbeatTimeout)
				if err != nil || len(m.Data) == 0 {
					logf("heartbeat: slave %d unresponsive", s)
					continue
				}
				opts.Metrics.Heartbeats.Inc()
				st := SlaveState(m.Data[0])
				if st != states[s] {
					transMu.Lock()
					res.Transitions = append(res.Transitions, Transition{Slave: s, From: states[s], To: st, At: time.Now()})
					transMu.Unlock()
					logf("heartbeat: slave %d %s -> %s", s, states[s], st)
					states[s] = st
				}
			}
			select {
			case <-hbStop:
				return
			case <-time.After(opts.HeartbeatInterval):
			}
		}
	}()
	stopHeartbeat := func() {
		close(hbStop)
		hbWG.Wait()
	}

	version := 0
	buildOU := func(adopt []cellBlob, withStates, done, abort bool) ownerUpdate {
		u := ownerUpdate{Version: version, Owners: make([]int, nCells), Done: done, Abort: abort, Adopt: adopt}
		for c := 0; c < nCells; c++ {
			u.Owners[c] = track[c].owner
			if track[c].failed {
				u.Failed = append(u.Failed, c)
			}
			if withStates {
				t := track[c]
				if t.state == nil && len(t.full) > 0 {
					if f, ferr := core.UnmarshalFullState(t.full); ferr == nil {
						t.state = f.Cell.Marshal()
					}
				}
				if t.state != nil {
					u.States = append(u.States, wireState{Rank: c, Iter: t.iter, Data: t.state})
				}
			}
		}
		return u
	}
	sendOU := func(dst int, u ownerUpdate) {
		payload, err := u.marshal()
		if err != nil {
			return
		}
		if err := retrySend(comm, dst, tagOwnerUpdate, payload, 4, 10*time.Millisecond, opts.Metrics.SendRetries); err != nil {
			logf("master: owner update to slave %d failed: %v", dst, err)
		}
	}

	// join runs the whole protocol for one reserve slave: deterministic
	// rebalance choice, release/ack recall of the moving cells' freshest
	// state, grant to the joiner, broadcast to peers.
	join := func(src int) {
		if src <= 0 || src > nSlaves || isActive(src) {
			return // duplicate request or nonsense rank
		}
		actMu.Lock()
		active[src] = true
		nActive := 0
		for _, ok := range active {
			if ok {
				nActive++
			}
		}
		actMu.Unlock()
		opts.Metrics.Joins.Inc()
		opts.Metrics.LiveSlaves.Set(float64(nActive))
		iters := make([]int, nCells)
		for c, t := range track {
			iters[c] = t.iter
		}
		logf("master: slave %d (%s) joining, rebalancing %d cells over %d slaves (iterations %v)", src, names[src], nCells, nActive, iters)

		// Pick the cells to move: repeatedly take the highest-rank
		// unfinished cell from the most loaded owner (ties: lowest owner
		// rank) while that owner still has strictly more unfinished
		// cells than the joiner would. Deterministic, and it converges
		// to the fair share.
		load := make(map[int]int)
		for _, t := range track {
			if !t.failed && t.iter < target {
				load[t.owner]++
			}
		}
		var moved []int
		for {
			// activeRanks is sorted, so with a strict > the first owner
			// carrying the maximum load wins — lowest rank breaks ties.
			heavy, max := 0, len(moved)
			for _, o := range activeRanks() {
				if o != src && load[o] > max {
					heavy, max = o, load[o]
				}
			}
			if heavy == 0 {
				break
			}
			pick := -1
			for c := nCells - 1; c >= 0; c-- {
				t := track[c]
				if t.owner == heavy && !t.failed && t.iter < target {
					pick = c
					break
				}
			}
			if pick < 0 {
				break
			}
			moved = append(moved, pick)
			load[heavy]--
		}
		sort.Ints(moved)
		if len(moved) == 0 {
			logf("master: no movable cells for joiner %d, granting empty membership", src)
		}

		// Recall the moving cells' freshest state from their owners.
		version++
		recall := make(map[int][]int) // old owner → cells
		for _, c := range moved {
			recall[track[c].owner] = append(recall[track[c].owner], c)
		}
		var owners []int
		for o := range recall {
			owners = append(owners, o)
		}
		sort.Ints(owners)
		for _, o := range owners {
			order := releaseOrder{Version: version, Cells: recall[o]}
			payload, merr := order.marshal()
			if merr != nil {
				continue
			}
			if err := retrySend(comm, o, tagRelease, payload, 4, 10*time.Millisecond, opts.Metrics.SendRetries); err != nil {
				logf("master: release order to slave %d failed: %v", o, err)
				continue
			}
			// The ack echoes the order's version; acks from older joins
			// are merged (harmless, monotonic) and skipped.
			deadline := time.Now().Add(opts.RoundTimeout)
			for {
				left := time.Until(deadline)
				if left <= 0 {
					logf("master: slave %d never acked release of cells %v; granting from last gathered state", o, recall[o])
					break
				}
				m, err := comm.RecvTimeout(o, tagReleaseAck, left)
				if err != nil {
					continue
				}
				ack, perr := parseStateUpdate(m.Data)
				if perr != nil {
					logf("master: bad release ack from slave %d: %v", o, perr)
					break
				}
				merge(ack.Cells)
				if ack.Round == version {
					break
				}
			}
		}

		// Reassign and grant. The joiner gets the run task first (it
		// spawns the execution thread), then the adoption orders with
		// seed snapshots; everyone else learns the new aim map.
		var adopt []cellBlob
		for _, c := range moved {
			track[c].owner = src
			opts.Metrics.Rebalances.Inc()
			adopt = append(adopt, cellBlob{
				CellRank: c, Iteration: track[c].iter, Full: track[c].full,
				Failed: track[c].failed, Error: track[c].errNote, Fitness: track[c].fitness,
			})
			logf("master: rebalanced cell %d to joiner %d (from iteration %d)", c, src, track[c].iter)
		}
		task := runTask{
			Cfg: opts.Cfg, CellRank: -1,
			Node: placements[src].Node, Core: placements[src].Core,
			Async: true, Joiner: true,
		}
		if payload, merr := task.marshal(); merr == nil {
			if err := retrySend(comm, src, tagRunTask, payload, 4, 10*time.Millisecond, opts.Metrics.SendRetries); err != nil {
				logf("master: run task to joiner %d failed: %v", src, err)
			}
		}
		for _, dst := range activeRanks() {
			u := buildOU(nil, true, false, false)
			if dst == src {
				u.Adopt = adopt
			}
			sendOU(dst, u)
		}
	}

	// The poll loop: drain uploads and joins, watch for completion,
	// nudge on stalls.
	jobDeadline := time.Time{}
	if opts.Cfg.TimeLimit > 0 {
		jobDeadline = started.Add(opts.Cfg.TimeLimit)
	}
	abortNow := false
	lastProgress := time.Now()
	for {
		// Joins are drained first: a pending join must be served while its
		// cells are still mid-flight, not after a heavy merge backlog.
		for {
			m, ok, err := comm.TryRecv(mpi.AnySource, tagJoin)
			if err != nil {
				stopHeartbeat()
				return nil, err
			}
			if !ok {
				break
			}
			join(m.Src)
			lastProgress = time.Now()
		}
		// Uploads are cumulative inventories, so within one drain only the
		// newest message per source matters; decoding every queued backlog
		// entry would cost more wall-clock than a training iteration and
		// starve the join/done checks.
		drained := false
		latest := make(map[int][]byte)
		for n := 0; n < asyncMasterDrainMax; n++ {
			m, ok, err := comm.TryRecv(mpi.AnySource, tagStateUpdate)
			if err != nil {
				stopHeartbeat()
				return nil, err
			}
			if !ok {
				break
			}
			drained = true
			opts.Metrics.StateUpdates.Inc()
			latest[m.Src] = m.Data
		}
		var uploaders []int
		for src := range latest {
			uploaders = append(uploaders, src)
		}
		sort.Ints(uploaders)
		for _, src := range uploaders {
			upd, perr := parseStateUpdate(latest[src])
			if perr != nil {
				logf("master: bad state update from slave %d: %v", src, perr)
				continue
			}
			if merge(upd.Cells) {
				lastProgress = time.Now()
			}
		}
		// Best-effort newest-wins snapshot whenever the slowest cell has
		// crossed a full cadence; the merge's monotonicity keeps per-cell
		// iterations monotonic across successive snapshots.
		ck.observe(track)

		abortNow = interrupted(opts.Interrupt) ||
			(!jobDeadline.IsZero() && time.Now().After(jobDeadline))
		done := true
		for _, t := range track {
			if !t.failed && t.iter < target {
				done = false
				break
			}
		}
		if done || abortNow {
			if abortNow {
				res.Aborted = true
				why := "time limit exceeded"
				if interrupted(opts.Interrupt) {
					why = "interrupted"
				}
				logf("master: %s, finishing with abort", why)
			}
			break
		}

		// Stall nudge: re-request inventories and re-send a fresh owner
		// update with seed states — either heals a gate starved by lost
		// pushes or a master view starved by lost uploads.
		if time.Since(lastProgress) >= opts.RoundTimeout {
			logf("master: no progress for %s, nudging %d slaves", opts.RoundTimeout, len(activeRanks()))
			version++
			for _, s := range activeRanks() {
				comm.Send(s, tagStateResend, nil) //nolint:errcheck
				sendOU(s, buildOU(nil, true, false, false))
			}
			lastProgress = time.Now()
		}
		if !drained {
			time.Sleep(asyncMasterPoll)
		}
	}
	logf("master: training done, collecting results")

	// Tell everyone training is over, then collect with retries (an
	// empty reply means "still finalising").
	version++
	doneOU := buildOU(nil, true, true, abortNow)
	for _, s := range activeRanks() {
		sendOU(s, doneOU)
	}
	prof := profile.New()
	res.Reports = make([]SlaveReport, nCells)
	gotCell := make([]bool, nCells)
	for _, s := range activeRanks() {
		backoff := 20 * time.Millisecond
		collected := false
		for attempt := 0; attempt < 3*opts.MaxStrikes && !collected; attempt++ {
			if err := comm.Send(s, tagCollect, nil); err != nil {
				break
			}
			m, err := comm.RecvTimeout(s, tagResult, opts.RoundTimeout)
			if err != nil || len(m.Data) == 0 {
				sendOU(s, doneOU) // the done signal may have been lost
				time.Sleep(backoff)
				if backoff < 500*time.Millisecond {
					backoff *= 2
				}
				continue
			}
			reps, perr := parseSlaveReports(m.Data)
			if perr != nil {
				logf("master: bad report from slave %d: %v", s, perr)
				break
			}
			for _, rep := range reps {
				if rep.CellRank < 0 || rep.CellRank >= nCells || gotCell[rep.CellRank] {
					continue
				}
				res.Reports[rep.CellRank] = rep
				gotCell[rep.CellRank] = true
				if snap, derr := profile.DecodeSnapshot(rep.Profile); derr == nil {
					prof.Merge(snap)
				}
				if rep.Aborted {
					res.Aborted = true
				}
			}
			collected = true
		}
		if !collected {
			logf("master: slave %d never delivered its reports", s)
		}
	}

	// Synthesize reports for cells whose owner never reported from the
	// master's merged view, exactly like resilient recovery.
	for c := 0; c < nCells; c++ {
		if gotCell[c] {
			continue
		}
		t := track[c]
		rep := SlaveReport{
			CellRank: c, Node: "recovered", Iterations: t.iter,
			MixtureFitness: t.fitness, State: t.state, Full: t.full,
			Error: fmt.Sprintf("report synthesized from master state (owner slave %d lost); %s", t.owner, t.errNote),
		}
		if t.failed || t.iter == 0 {
			rep.MixtureFitness = inf()
		}
		if f, ferr := core.UnmarshalFullState(t.full); ferr == nil {
			rep.MixtureRanks = append([]int(nil), f.MixtureRanks...)
			rep.MixtureWeights = append([]float64(nil), f.MixtureWeights...)
		}
		res.Reports[c] = rep
		logf("master: synthesized report for cell %d at iteration %d", c, t.iter)
	}

	// Shut every connected rank down, reserves that never joined too.
	for s := 1; s <= nSlaves; s++ {
		comm.Send(s, tagShutdown, nil) //nolint:errcheck
	}
	stopHeartbeat()

	best := 0
	for i, r := range res.Reports {
		if r.MixtureFitness < res.Reports[best].MixtureFitness {
			best = i
		}
	}
	res.BestCell = res.Reports[best].CellRank
	res.Profile = prof.Snapshot()
	res.Elapsed = time.Since(started)
	logf("master: best cell %d (mixture fitness %.4f), elapsed %s",
		res.BestCell, res.Reports[best].MixtureFitness, res.Elapsed.Round(time.Millisecond))
	return res, nil
}
