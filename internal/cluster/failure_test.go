package cluster

import (
	"strings"
	"sync"
	"testing"
	"time"

	"cellgan/internal/mpi"
)

// TestMasterDetectsDeadSlave runs a job where one "slave" sends its node
// name and then goes silent; the master must fail with an unresponsive
// error instead of hanging.
func TestMasterDetectsDeadSlave(t *testing.T) {
	cfg := jobConfig()
	n := cfg.NumTasks()
	w := mpi.MustWorld(n)
	defer w.Close()

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs <- func() error {
				comm, err := w.Comm(rank)
				if err != nil {
					return err
				}
				local, err := SplitLocal(comm)
				if err != nil {
					return err
				}
				switch rank {
				case 0:
					_, err := RunMaster(comm, MasterOptions{
						Cfg:               cfg,
						HeartbeatInterval: time.Millisecond,
						HeartbeatTimeout:  100 * time.Millisecond,
					})
					if err == nil {
						return errAssert("master did not detect the dead slave")
					}
					if !strings.Contains(err.Error(), "unresponsive") {
						return errAssert("unexpected master error: " + err.Error())
					}
					// Tear the world down so surviving slaves exit too.
					w.Close()
					return nil
				case 2:
					// The dead slave: announce, then vanish.
					return comm.Send(0, tagNodeName, []byte("zombie"))
				default:
					err := RunSlave(comm, local)
					// Survivors die with ErrClosed when the master tears
					// the world down — that is the expected cleanup path.
					if err == nil || strings.Contains(err.Error(), "closed") {
						return nil
					}
					return err
				}
			}()
		}(rank)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("job with dead slave hung")
	}
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

type errAssert string

func (e errAssert) Error() string { return string(e) }
