package cluster

import (
	"bytes"
	"testing"

	"cellgan/internal/checkpoint"
	"cellgan/internal/core"
)

// checkpointFromReports reassembles a full checkpoint from the FullState
// blobs a resilient job returns, in rank order as checkpoint.Write expects.
func checkpointFromReports(t *testing.T, res *JobResult) []byte {
	t.Helper()
	cfg := chaosConfig(2, 2)
	states := make([]*core.FullState, cfg.NumCells())
	for _, r := range res.Reports {
		if len(r.Full) == 0 {
			t.Fatalf("cell %d report carries no full state", r.CellRank)
		}
		fs, err := core.UnmarshalFullState(r.Full)
		if err != nil {
			t.Fatalf("cell %d full state: %v", r.CellRank, err)
		}
		states[r.CellRank] = fs
	}
	var buf bytes.Buffer
	if err := checkpoint.Write(&buf, &checkpoint.Checkpoint{Cfg: cfg, States: states}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenCheckpointDeterminism is the golden reproducibility check: two
// identically-seeded 2×2 grid runs must produce bit-identical checkpoints —
// every network parameter, optimizer moment, RNG stream and loader position.
// A third run under a content-preserving fault plan (duplicates and delays,
// no losses) must land on the same bytes: fault recovery may reshuffle the
// message schedule but never the training outcome.
func TestGoldenCheckpointDeterminism(t *testing.T) {
	cfg := chaosConfig(2, 2)
	opts := chaosOptions(cfg, 3)

	run := func() []byte {
		res, err := RunJob(opts)
		if err != nil {
			t.Fatal(err)
		}
		requireAllTrained(t, cfg, res)
		return checkpointFromReports(t, res)
	}
	first := run()
	second := run()
	if !bytes.Equal(first, second) {
		t.Fatalf("two identical runs produced different checkpoints (%d vs %d bytes)", len(first), len(second))
	}

	chaosRes, err := RunJobChaos(opts, ChaosPlan(42, 0, 0.35, 0.35))
	if err != nil {
		t.Fatal(err)
	}
	requireAllTrained(t, cfg, chaosRes)
	third := checkpointFromReports(t, chaosRes)
	if !bytes.Equal(first, third) {
		t.Fatal("dup/delay chaos run diverged from the fault-free checkpoint")
	}
}
