package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cellgan/internal/checkpoint"
	"cellgan/internal/core"
)

// clusterSnapRecorder collects master-side periodic snapshots.
type clusterSnapRecorder struct {
	mu     sync.Mutex
	iters  []int
	states [][]*core.FullState
}

func (r *clusterSnapRecorder) sink(iter int, states []*core.FullState) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.iters = append(r.iters, iter)
	r.states = append(r.states, states)
	return nil
}

// opsCountFS counts mutating filesystem operations, to calibrate the
// crash point of the supervised-recovery scenario.
type opsCountFS struct {
	checkpoint.FS
	ops int
}

func (c *opsCountFS) Create(path string) (checkpoint.File, error) {
	f, err := c.FS.Create(path)
	if err != nil {
		return nil, err
	}
	c.ops++
	return opsCountFile{c, f}, nil
}
func (c *opsCountFS) Rename(o, n string) error { c.ops++; return c.FS.Rename(o, n) }
func (c *opsCountFS) Remove(path string) error { c.ops++; return c.FS.Remove(path) }
func (c *opsCountFS) SyncDir(dir string) error { c.ops++; return c.FS.SyncDir(dir) }

type opsCountFile struct {
	fs    *opsCountFS
	inner checkpoint.File
}

func (f opsCountFile) Write(p []byte) (int, error) { f.fs.ops++; return f.inner.Write(p) }
func (f opsCountFile) Sync() error                 { f.fs.ops++; return f.inner.Sync() }
func (f opsCountFile) Close() error                { return f.inner.Close() }

func clusterAssertSameFull(t *testing.T, label string, got, want []*core.FullState) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d states, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Marshal(), want[i].Marshal()) {
			t.Fatalf("%s: state %d differs", label, i)
		}
	}
}

// TestResilientPeriodicResumeBitExact: the resilient master's periodic
// snapshots are consistent cuts — resuming the mid-run snapshot through
// the whole cluster runtime lands bit-identically on the uninterrupted
// run's final state, and capture itself does not perturb training.
func TestResilientPeriodicResumeBitExact(t *testing.T) {
	cfg := jobConfig()
	cfg.Iterations = 4

	golden, err := RunJob(MasterOptions{Cfg: cfg, Resilient: true})
	if err != nil {
		t.Fatal(err)
	}
	goldenFull, err := golden.FullStates()
	if err != nil {
		t.Fatal(err)
	}

	rec := &clusterSnapRecorder{}
	periodic, err := RunJob(MasterOptions{
		Cfg: cfg, Resilient: true,
		CheckpointEvery: 2, CheckpointSink: rec.sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	periodicFull, err := periodic.FullStates()
	if err != nil {
		t.Fatal(err)
	}
	clusterAssertSameFull(t, "periodic vs plain final state", periodicFull, goldenFull)
	if len(rec.iters) != 2 || rec.iters[0] != 2 || rec.iters[1] != 4 {
		t.Fatalf("snapshot iterations %v, want [2 4]", rec.iters)
	}
	for _, s := range rec.states[0] {
		if s.Cell.Iteration != 2 {
			t.Fatalf("mid-run snapshot mixes iterations in lockstep mode: cell %d at %d", s.Cell.Rank, s.Cell.Iteration)
		}
	}
	clusterAssertSameFull(t, "final snapshot vs final state", rec.states[1], goldenFull)

	resumed, err := RunJob(MasterOptions{Cfg: cfg, Resilient: true, Resume: rec.states[0]})
	if err != nil {
		t.Fatal(err)
	}
	resumedFull, err := resumed.FullStates()
	if err != nil {
		t.Fatal(err)
	}
	clusterAssertSameFull(t, "resumed vs uninterrupted", resumedFull, goldenFull)
}

// TestPlainMasterIgnoresCadence: the plain (non-resilient, non-async)
// master has no per-iteration inventory, so a configured cadence emits
// nothing rather than lying with stale states.
func TestPlainMasterIgnoresCadence(t *testing.T) {
	rec := &clusterSnapRecorder{}
	if _, err := RunJob(MasterOptions{
		Cfg:             jobConfig(),
		CheckpointEvery: 1, CheckpointSink: rec.sink,
	}); err != nil {
		t.Fatal(err)
	}
	if len(rec.iters) != 0 {
		t.Fatalf("plain master emitted %d snapshots, want 0", len(rec.iters))
	}
}

// TestAsyncClusterSnapshotsMonotonicAndResumable: the async master's
// best-effort snapshots are complete, per-cell monotonic, keyed by the
// minimum iteration, and the newest one resumes through the async
// cluster runtime to a completed job.
func TestAsyncClusterSnapshotsMonotonicAndResumable(t *testing.T) {
	cfg := jobConfig()
	cfg.Iterations = 6

	rec := &clusterSnapRecorder{}
	res, err := RunJob(MasterOptions{
		Cfg: cfg, Async: true,
		CheckpointEvery: 2, CheckpointSink: rec.sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("async job aborted")
	}
	if len(rec.iters) == 0 {
		t.Fatal("async master emitted no snapshots")
	}
	n := cfg.NumCells()
	prev := make([]int, n)
	for si, states := range rec.states {
		if len(states) != n {
			t.Fatalf("snapshot %d has %d states, want %d", si, len(states), n)
		}
		min := -1
		for i, s := range states {
			if s == nil || s.Cell.Rank != i {
				t.Fatalf("snapshot %d: bad state at %d", si, i)
			}
			if s.Cell.Iteration < prev[i] {
				t.Fatalf("snapshot %d: cell %d went backwards %d -> %d", si, i, prev[i], s.Cell.Iteration)
			}
			prev[i] = s.Cell.Iteration
			if min < 0 || s.Cell.Iteration < min {
				min = s.Cell.Iteration
			}
		}
		if rec.iters[si] != min {
			t.Fatalf("snapshot %d keyed %d, min is %d", si, rec.iters[si], min)
		}
	}

	// Whole-job resume of the newest async snapshot, mixed iterations and
	// all, runs to the higher target.
	resumeCfg := cfg
	resumeCfg.Iterations = 8
	resumed, err := RunJob(MasterOptions{
		Cfg: resumeCfg, Async: true,
		Resume: rec.states[len(rec.states)-1],
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := resumed.FullStates()
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range full {
		if f.Cell.Iteration != 8 {
			t.Fatalf("resumed async cell %d at iteration %d, want 8", i, f.Cell.Iteration)
		}
	}
}

// TestResumeValidationRejectsBadSets: the master refuses resume sets
// that cannot be what they claim — wrong cardinality, out-of-order
// ranks, mixed iterations outside async, an iteration past the target.
func TestResumeValidationRejectsBadSets(t *testing.T) {
	cfg := jobConfig()
	res, err := RunJob(MasterOptions{Cfg: cfg, Resilient: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := res.FullStates()
	if err != nil {
		t.Fatal(err)
	}

	if err := validateResume(MasterOptions{Cfg: cfg, Resume: full[:1]}); err == nil {
		t.Fatal("short resume set accepted")
	}

	swapped := append([]*core.FullState(nil), full...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if err := validateResume(MasterOptions{Cfg: cfg, Resume: swapped}); err == nil {
		t.Fatal("rank-disordered resume set accepted")
	}

	mixed := make([]*core.FullState, len(full))
	for i, f := range full {
		g, err := core.UnmarshalFullState(f.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		mixed[i] = g
	}
	mixed[0].Cell.Iteration = 1
	if err := validateResume(MasterOptions{Cfg: cfg, Resume: mixed}); err == nil {
		t.Fatal("mixed-iteration resume set accepted outside async mode")
	}
	if err := validateResume(MasterOptions{Cfg: cfg, Async: true, Resume: mixed}); err != nil {
		t.Fatalf("async mode rejected a mixed-iteration snapshot: %v", err)
	}

	past := jobConfig()
	past.Iterations = 1 // states are at 2
	if err := validateResume(MasterOptions{Cfg: past, Resume: full}); err == nil {
		t.Fatal("resume beyond the iteration target accepted")
	}

	// At-target resume is legal: the job finalizes with zero iterations.
	if err := validateResume(MasterOptions{Cfg: cfg, Resume: full}); err != nil {
		t.Fatalf("at-target resume rejected: %v", err)
	}
}

// TestSuperviseBackoffSchedule: the restart loop runs the exponential
// schedule with a cap, passes the attempt index through, and gives up
// with the last error after MaxRestarts restarts.
func TestSuperviseBackoffSchedule(t *testing.T) {
	var sleeps []time.Duration
	var attempts []int
	boom := errors.New("boom")
	err := Supervise(SuperviseOptions{
		MaxRestarts:    3,
		InitialBackoff: 100 * time.Millisecond,
		MaxBackoff:     300 * time.Millisecond,
		Sleep:          func(d time.Duration) { sleeps = append(sleeps, d) },
	}, func(attempt int) error {
		attempts = append(attempts, attempt)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("exhausted supervisor error = %v, want wrapped boom", err)
	}
	wantAttempts := []int{0, 1, 2, 3}
	if fmt.Sprint(attempts) != fmt.Sprint(wantAttempts) {
		t.Fatalf("attempts %v, want %v", attempts, wantAttempts)
	}
	wantSleeps := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond}
	if fmt.Sprint(sleeps) != fmt.Sprint(wantSleeps) {
		t.Fatalf("sleeps %v, want %v", sleeps, wantSleeps)
	}
}

func TestSuperviseStopsOnSuccess(t *testing.T) {
	var sleeps int
	err := Supervise(SuperviseOptions{
		Sleep: func(time.Duration) { sleeps++ },
	}, func(attempt int) error {
		if attempt < 2 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("supervisor with eventual success returned %v", err)
	}
	if sleeps != 2 {
		t.Fatalf("slept %d times, want 2", sleeps)
	}
}

// TestSupervisedRecoveryBitExact is the whole-job recovery acceptance in
// miniature: attempt 0 trains with periodic checkpointing and crashes
// mid-job (a disk-fault-injected filesystem kills the process's saves,
// then the job "dies"); the supervisor restarts, attempt 1 resumes from
// the newest valid generation and finishes. The final state must be
// bit-identical to a run that never crashed.
func TestSupervisedRecoveryBitExact(t *testing.T) {
	cfg := jobConfig()
	cfg.Iterations = 4

	golden, err := RunJob(MasterOptions{Cfg: cfg, Resilient: true})
	if err != nil {
		t.Fatal(err)
	}
	goldenFull, err := golden.FullStates()
	if err != nil {
		t.Fatal(err)
	}

	base := filepath.Join(t.TempDir(), "job.ckpt")
	crashed := errors.New("job crashed")
	var finalFull []*core.FullState
	err = Supervise(SuperviseOptions{
		Sleep: func(time.Duration) {}, // instant backoff in tests
	}, func(attempt int) error {
		var resume []*core.FullState
		if attempt > 0 {
			cp, gen, err := checkpoint.LoadLatest(checkpoint.OS{}, base)
			if err != nil {
				return err
			}
			if cp.Iteration() >= cfg.Iterations {
				return fmt.Errorf("generation %d already at target", gen)
			}
			resume = cp.States
		}

		// Attempt 0 writes through a filesystem that dies after the first
		// generation lands; the failed save is non-fatal (the sink logs
		// and carries on), and the job itself then crashes.
		fs := checkpoint.FS(checkpoint.OS{})
		if attempt == 0 {
			// Measure one clean save, then budget exactly enough ops for
			// generation 1 to land and kill the disk early in generation 2.
			cp, err := checkpoint.New(cfg, goldenFull)
			if err != nil {
				return err
			}
			probe := &opsCountFS{FS: checkpoint.OS{}}
			ps, err := checkpoint.NewSaver(probe, filepath.Join(t.TempDir(), "probe.ckpt"), 3, nil)
			if err != nil {
				return err
			}
			if _, err := ps.Save(cp); err != nil {
				return err
			}
			fs = checkpoint.NewFaultFS(checkpoint.OS{}, checkpoint.FSFaultPlan{Seed: 1, CrashAfterOps: probe.ops + 2})
		}
		saver, err := checkpoint.NewSaver(fs, base, 3, nil)
		if err != nil {
			return err
		}
		res, err := RunJob(MasterOptions{
			Cfg: cfg, Resilient: true, Resume: resume,
			CheckpointEvery: 1,
			CheckpointSink: func(iter int, states []*core.FullState) error {
				cp, err := checkpoint.New(cfg, states)
				if err != nil {
					return err
				}
				_, err = saver.Save(cp)
				return err // master logs sink errors; they never kill the job
			},
		})
		if err != nil {
			return err
		}
		if attempt == 0 {
			return crashed
		}
		finalFull, err = res.FullStates()
		return err
	})
	if err != nil {
		t.Fatalf("supervised recovery failed: %v", err)
	}
	clusterAssertSameFull(t, "supervised recovery vs uninterrupted", finalFull, goldenFull)

	// The recovery really did go through disk: a valid checkpoint for the
	// job exists and is at least at the resumed-from iteration.
	cp, _, err := checkpoint.LoadLatest(checkpoint.OS{}, base)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Iteration() < 1 {
		t.Fatalf("no durable progress recorded: iteration %d", cp.Iteration())
	}
}
