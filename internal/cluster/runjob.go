package cluster

import (
	"fmt"
	"sync"

	"cellgan/internal/mpi"
)

// RunJob executes a complete master/slave training job inside one process:
// an inproc MPI world of Cfg.NumTasks() ranks is created, rank 0 runs the
// master and every other rank runs a slave. This is the one-call entry
// point used by the trainer binary and the benchmarks; the cmd/cluster
// binary wires the same two role functions over the TCP transport instead.
func RunJob(opts MasterOptions) (*JobResult, error) {
	if err := opts.Cfg.Validate(); err != nil {
		return nil, err
	}
	n := opts.Cfg.NumTasks()
	world, err := mpi.NewWorld(n)
	if err != nil {
		return nil, err
	}
	defer world.Close()

	var res *JobResult
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs <- func() error {
				comm, err := world.Comm(rank)
				if err != nil {
					return err
				}
				local, err := SplitLocal(comm)
				if err != nil {
					return err
				}
				if rank == 0 {
					r, err := RunMaster(comm, opts)
					if err != nil {
						return err
					}
					res = r
					return nil
				}
				return RunSlave(comm, local)
			}()
		}(rank)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if res == nil {
		return nil, fmt.Errorf("cluster: job produced no result")
	}
	return res, nil
}

// ChaosPlan builds a fault-injection plan scoped to the runtime's chatty
// message streams — heartbeats and the resilient exchange rounds — leaving
// the bootstrap (node names, run tasks) and collection protocol reliable.
// All decisions derive from the seed and per-stream message counts, so a
// given (seed, probabilities) pair injects the same faults on every run.
func ChaosPlan(seed uint64, drop, dup, delay float64) mpi.FaultPlan {
	return mpi.FaultPlan{
		Seed:      seed,
		DropProb:  drop,
		DupProb:   dup,
		DelayProb: delay,
		Tags:      []int{tagStatus, tagStateUpdate, tagNeighborSet, tagStateResend},
	}
}

// RunJobChaos is RunJob with a deterministic fault plan applied to every
// rank's communicator (see mpi.FaultyComm). Slave failures caused by the
// plan — injected crashes, or the master closing the world after the job —
// are expected and not reported as errors; the master's outcome decides.
func RunJobChaos(opts MasterOptions, plan mpi.FaultPlan) (*JobResult, error) {
	if err := opts.Cfg.Validate(); err != nil {
		return nil, err
	}
	n := opts.Cfg.NumTasks()
	world, err := mpi.NewWorld(n)
	if err != nil {
		return nil, err
	}
	defer world.Close()

	var res *JobResult
	var masterErr error
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comm, err := world.Comm(rank)
			if err != nil {
				if rank == 0 {
					masterErr = err
				}
				return
			}
			comm = mpi.FaultyComm(comm, plan)
			local, err := SplitLocal(comm)
			if err != nil {
				if rank == 0 {
					masterErr = err
				}
				return
			}
			if rank == 0 {
				res, masterErr = RunMaster(comm, opts)
				// Unblock any zombie slaves still receiving (an evicted
				// slave that missed its shutdown, or a crashed rank).
				world.Close()
				return
			}
			// Slave errors are tolerated: a chaos run kills slaves on
			// purpose and the world close above ends the stragglers.
			_ = RunSlave(comm, local)
		}(rank)
	}
	wg.Wait()
	if masterErr != nil {
		return nil, masterErr
	}
	if res == nil {
		return nil, fmt.Errorf("cluster: chaos job produced no result")
	}
	return res, nil
}
