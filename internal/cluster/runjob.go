package cluster

import (
	"fmt"
	"sync"

	"cellgan/internal/mpi"
)

// RunJob executes a complete master/slave training job inside one process:
// an inproc MPI world of Cfg.NumTasks() ranks is created, rank 0 runs the
// master and every other rank runs a slave. This is the one-call entry
// point used by the trainer binary and the benchmarks; the cmd/cluster
// binary wires the same two role functions over the TCP transport instead.
func RunJob(opts MasterOptions) (*JobResult, error) {
	if err := opts.Cfg.Validate(); err != nil {
		return nil, err
	}
	n := opts.Cfg.NumTasks()
	if opts.Async {
		n += opts.JoinSlots // reserves idle until shutdown without a signal
	}
	world, err := mpi.NewWorld(n)
	if err != nil {
		return nil, err
	}
	defer world.Close()

	var res *JobResult
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs <- func() error {
				comm, err := world.Comm(rank)
				if err != nil {
					return err
				}
				local, err := SplitLocal(comm)
				if err != nil {
					return err
				}
				if rank == 0 {
					r, err := RunMaster(comm, opts)
					if err != nil {
						return err
					}
					res = r
					return nil
				}
				return RunSlave(comm, local)
			}()
		}(rank)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if res == nil {
		return nil, fmt.Errorf("cluster: job produced no result")
	}
	return res, nil
}

// ChaosPlan builds a fault-injection plan scoped to the runtime's chatty
// message streams — heartbeats and the resilient exchange rounds — leaving
// the bootstrap (node names, run tasks) and collection protocol reliable.
// All decisions derive from the seed and per-stream message counts, so a
// given (seed, probabilities) pair injects the same faults on every run.
func ChaosPlan(seed uint64, drop, dup, delay float64) mpi.FaultPlan {
	return mpi.FaultPlan{
		Seed:      seed,
		DropProb:  drop,
		DupProb:   dup,
		DelayProb: delay,
		Tags:      []int{tagStatus, tagStateUpdate, tagNeighborSet, tagStateResend},
	}
}

// AsyncChaosPlan builds a fault-injection plan scoped to the async
// runtime's chatty streams — heartbeats, inventory uploads and the
// peer-to-peer snapshot pushes. The membership protocol (join, release,
// owner updates) and the collection protocol stay reliable, mirroring how
// ChaosPlan keeps the bootstrap clean.
func AsyncChaosPlan(seed uint64, drop, dup, delay float64) mpi.FaultPlan {
	return mpi.FaultPlan{
		Seed:      seed,
		DropProb:  drop,
		DupProb:   dup,
		DelayProb: delay,
		Tags:      []int{tagStatus, tagStateUpdate, tagAsyncState},
	}
}

// RunJobChaos is RunJob with a deterministic fault plan applied to every
// rank's communicator (see mpi.FaultyComm). Slave failures caused by the
// plan — injected crashes, or the master closing the world after the job —
// are expected and not reported as errors; the master's outcome decides.
func RunJobChaos(opts MasterOptions, plan mpi.FaultPlan) (*JobResult, error) {
	return runJobFaulty(opts, &plan, nil)
}

// JoinSpec describes one elastic reserve slave of RunJobWithJoiners.
type JoinSpec struct {
	// Signal, once closed, makes the reserve ask the master to join the
	// running job. A nil Signal never joins (the reserve idles until
	// shutdown).
	Signal <-chan struct{}
}

// RunJobWithJoiners runs an async-mode job with connected reserve slaves
// that join mid-run when their signal fires. The world holds
// Cfg.NumTasks() + len(joins) ranks; opts.Async is forced on and
// opts.JoinSlots is set to len(joins). plan, when non-nil, is applied to
// every rank's communicator as in RunJobChaos.
func RunJobWithJoiners(opts MasterOptions, plan *mpi.FaultPlan, joins []JoinSpec) (*JobResult, error) {
	opts.Async = true
	opts.JoinSlots = len(joins)
	return runJobFaulty(opts, plan, joins)
}

// runJobFaulty is the shared in-process job runner behind the chaos and
// elastic entry points.
func runJobFaulty(opts MasterOptions, plan *mpi.FaultPlan, joins []JoinSpec) (*JobResult, error) {
	if err := opts.Cfg.Validate(); err != nil {
		return nil, err
	}
	n := opts.Cfg.NumTasks()
	if opts.Async {
		n += opts.JoinSlots
	}
	world, err := mpi.NewWorld(n)
	if err != nil {
		return nil, err
	}
	defer world.Close()

	nWorkers := opts.Cfg.NumTasks()
	var res *JobResult
	var masterErr error
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comm, err := world.Comm(rank)
			if err != nil {
				if rank == 0 {
					masterErr = err
				}
				return
			}
			if plan != nil {
				comm = mpi.FaultyComm(comm, *plan)
			}
			local, err := SplitLocal(comm)
			if err != nil {
				if rank == 0 {
					masterErr = err
				}
				return
			}
			if rank == 0 {
				res, masterErr = RunMaster(comm, opts)
				// Unblock any zombie slaves still receiving (an evicted
				// slave that missed its shutdown, or a crashed rank).
				world.Close()
				return
			}
			var sopts SlaveOptions
			if rank >= nWorkers {
				sopts.JoinSignal = joins[rank-nWorkers].Signal
			}
			// Slave errors are tolerated: a chaos run kills slaves on
			// purpose and the world close above ends the stragglers.
			_ = RunSlaveOpts(comm, local, sopts)
		}(rank)
	}
	wg.Wait()
	if masterErr != nil {
		return nil, masterErr
	}
	if res == nil {
		return nil, fmt.Errorf("cluster: chaos job produced no result")
	}
	return res, nil
}
