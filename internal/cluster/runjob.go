package cluster

import (
	"fmt"
	"sync"

	"cellgan/internal/mpi"
)

// RunJob executes a complete master/slave training job inside one process:
// an inproc MPI world of Cfg.NumTasks() ranks is created, rank 0 runs the
// master and every other rank runs a slave. This is the one-call entry
// point used by the trainer binary and the benchmarks; the cmd/cluster
// binary wires the same two role functions over the TCP transport instead.
func RunJob(opts MasterOptions) (*JobResult, error) {
	if err := opts.Cfg.Validate(); err != nil {
		return nil, err
	}
	n := opts.Cfg.NumTasks()
	world, err := mpi.NewWorld(n)
	if err != nil {
		return nil, err
	}
	defer world.Close()

	var res *JobResult
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs <- func() error {
				comm, err := world.Comm(rank)
				if err != nil {
					return err
				}
				local, err := SplitLocal(comm)
				if err != nil {
					return err
				}
				if rank == 0 {
					r, err := RunMaster(comm, opts)
					if err != nil {
						return err
					}
					res = r
					return nil
				}
				return RunSlave(comm, local)
			}()
		}(rank)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if res == nil {
		return nil, fmt.Errorf("cluster: job produced no result")
	}
	return res, nil
}
