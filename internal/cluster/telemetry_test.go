package cluster

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cellgan/internal/telemetry"
)

func TestJobInterruptAborts(t *testing.T) {
	cfg := jobConfig()
	cfg.Iterations = 10000 // far more than will run before the interrupt
	interrupt := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(interrupt)
	}()
	res, err := RunJob(MasterOptions{
		Cfg:               cfg,
		HeartbeatInterval: 5 * time.Millisecond,
		Interrupt:         interrupt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("job did not abort on interrupt")
	}
	for _, r := range res.Reports {
		if r.Iterations >= cfg.Iterations {
			t.Fatalf("cell %d completed all iterations despite interrupt", r.CellRank)
		}
	}
	if !strings.Contains(strings.Join(res.Log, "\n"), "interrupted") {
		t.Fatalf("event log missing the interrupt:\n%s", strings.Join(res.Log, "\n"))
	}
}

func TestJobMetricsRecorded(t *testing.T) {
	cfg := jobConfig()
	reg := telemetry.NewRegistry()
	res, err := RunJob(MasterOptions{
		Cfg:               cfg,
		HeartbeatInterval: time.Millisecond,
		Metrics:           NewMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("job aborted unexpectedly")
	}
	var b bytes.Buffer
	reg.WriteText(&b)
	got := b.String()
	for _, want := range []string{
		"cluster_heartbeats_total",
		"cluster_live_slaves 4",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("exposition missing %q:\n%s", want, got)
		}
	}
}

func TestResilientJobMetricsCountRounds(t *testing.T) {
	cfg := jobConfig()
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	res, err := RunJob(MasterOptions{
		Cfg:               cfg,
		HeartbeatInterval: 5 * time.Millisecond,
		Resilient:         true,
		Metrics:           m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("job aborted unexpectedly")
	}
	if m.Rounds.Value() == 0 {
		t.Fatal("resilient run recorded no rounds")
	}
	if m.StateUpdates.Value() == 0 {
		t.Fatal("resilient run recorded no state updates")
	}
	if m.Evictions.Value() != 0 {
		t.Fatalf("healthy run recorded %d evictions", m.Evictions.Value())
	}
}
