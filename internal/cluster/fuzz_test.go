package cluster

import (
	"testing"
)

// seedOwnerUpdateBytes builds a representative valid owner update for the
// fuzz corpus: a four-cell map with a failed cell, an adoption order and a
// seed state, round-tripped through marshal.
func seedOwnerUpdateBytes(f *testing.F) []byte {
	f.Helper()
	u := ownerUpdate{
		Version: 3,
		Owners:  []int{1, 2, 5, 5},
		Failed:  []int{1},
		Adopt: []cellBlob{
			{CellRank: 2, Iteration: 4, Full: []byte{1, 2, 3}, Fitness: 0.5},
		},
		States: []wireState{{Rank: 3, Iter: 4, Data: []byte{9, 8}}},
		Done:   false,
	}
	payload, err := u.marshal()
	if err != nil {
		f.Fatal(err)
	}
	return payload
}

// FuzzParseOwnerUpdate asserts the membership decoder never panics and
// never hands the slave loop a structurally invalid update: every accepted
// message satisfies the invariants executeAsync relies on without
// re-checking (bounded owner map, in-range cell lists, duplicate-free
// adoption orders) and re-encodes cleanly.
func FuzzParseOwnerUpdate(f *testing.F) {
	seed := seedOwnerUpdateBytes(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // truncated mid-object
	f.Add([]byte{})
	f.Add([]byte(`{}`))                          // no owner map
	f.Add([]byte(`{"version":-1,"owners":[1]}`)) // negative version
	f.Add([]byte(`{"version":0,"owners":[1,2],"failed":[2]}`))
	f.Add([]byte(`{"version":0,"owners":[1,2],"adopt":[{"cell":0},{"cell":0}]}`))
	f.Add([]byte(`{"version":0,"owners":[-3]}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := parseOwnerUpdate(data)
		if err != nil {
			return
		}
		n := len(u.Owners)
		if u.Version < 0 || n == 0 || n > maxProtocolCells {
			t.Fatalf("accepted update breaks bounds: version %d, %d owners", u.Version, n)
		}
		if len(u.Failed) > n || len(u.Adopt) > n || len(u.States) > n {
			t.Fatalf("accepted update lists exceed %d cells", n)
		}
		for _, o := range u.Owners {
			if o < 0 {
				t.Fatalf("accepted update has negative owner %d", o)
			}
		}
		for _, c := range u.Failed {
			if c < 0 || c >= n {
				t.Fatalf("accepted update fails cell %d of %d", c, n)
			}
		}
		seen := make(map[int]bool, len(u.Adopt))
		for _, ad := range u.Adopt {
			if ad.CellRank < 0 || ad.CellRank >= n || ad.Iteration < 0 || seen[ad.CellRank] {
				t.Fatalf("accepted update has bad adopt order %+v", ad)
			}
			seen[ad.CellRank] = true
		}
		for _, ws := range u.States {
			if ws.Rank < 0 || ws.Rank >= n {
				t.Fatalf("accepted update seeds cell %d of %d", ws.Rank, n)
			}
		}
		if _, err := u.marshal(); err != nil {
			t.Fatalf("accepted update does not re-encode: %v", err)
		}
	})
}

// FuzzParseReleaseOrder does the same for the recall half of the join
// protocol: accepted orders are bounded, in-range and duplicate-free.
func FuzzParseReleaseOrder(f *testing.F) {
	seed, err := releaseOrder{Version: 2, Cells: []int{0, 3, 1}}.marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	f.Add([]byte(`{}`))                          // no cells
	f.Add([]byte(`{"version":-2,"cells":[0]}`))  // negative version
	f.Add([]byte(`{"version":0,"cells":[0,0]}`)) // duplicate
	f.Add([]byte(`{"version":0,"cells":[-1]}`))
	f.Add([]byte(`{"version":0,"cells":[999999]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := parseReleaseOrder(data)
		if err != nil {
			return
		}
		if r.Version < 0 || len(r.Cells) == 0 || len(r.Cells) > maxProtocolCells {
			t.Fatalf("accepted order breaks bounds: version %d, %d cells", r.Version, len(r.Cells))
		}
		seen := make(map[int]bool, len(r.Cells))
		for _, c := range r.Cells {
			if c < 0 || c >= maxProtocolCells || seen[c] {
				t.Fatalf("accepted order releases bad cell %d", c)
			}
			seen[c] = true
		}
		if _, err := r.marshal(); err != nil {
			t.Fatalf("accepted order does not re-encode: %v", err)
		}
	})
}
