package cluster

import (
	"strings"
	"testing"
	"time"

	"cellgan/internal/config"
	"cellgan/internal/core"
	"cellgan/internal/mpi"
	"cellgan/internal/profile"
)

// jobConfig is a fast 2×2-grid configuration (5 tasks).
func jobConfig() config.Config {
	return config.Default().Scaled(2, 8, 100)
}

func TestRunJobEndToEnd(t *testing.T) {
	cfg := jobConfig()
	res, err := RunJob(MasterOptions{Cfg: cfg, HeartbeatInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("job aborted unexpectedly")
	}
	if len(res.Reports) != cfg.NumCells() {
		t.Fatalf("reports %d", len(res.Reports))
	}
	for i, r := range res.Reports {
		if r.Error != "" {
			t.Fatalf("slave for cell %d failed: %s", i, r.Error)
		}
		if r.CellRank != i {
			t.Fatalf("report %d is for cell %d", i, r.CellRank)
		}
		if r.Iterations != cfg.Iterations {
			t.Fatalf("cell %d ran %d iterations", i, r.Iterations)
		}
		if len(r.State) == 0 {
			t.Fatalf("cell %d missing state", i)
		}
		if _, err := core.UnmarshalCellState(r.State); err != nil {
			t.Fatalf("cell %d state corrupt: %v", i, err)
		}
		if len(r.MixtureRanks) == 0 || len(r.MixtureRanks) != len(r.MixtureWeights) {
			t.Fatalf("cell %d mixture %v/%v", i, r.MixtureRanks, r.MixtureWeights)
		}
	}
	// Best cell must be the minimum mixture fitness.
	for _, r := range res.Reports {
		if r.MixtureFitness < res.Best().MixtureFitness {
			t.Fatal("BestCell is not minimal")
		}
	}
	// The merged profile must include all four routines of Table IV.
	for _, routine := range []string{profile.RoutineTrain, profile.RoutineMutate,
		profile.RoutineUpdateGenomes, profile.RoutineGather} {
		if res.Profile[routine].Count == 0 {
			t.Fatalf("merged profile missing %q", routine)
		}
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if len(res.Placements) != cfg.NumTasks() {
		t.Fatalf("placements %d", len(res.Placements))
	}
}

func TestJobRecordsStateTransitions(t *testing.T) {
	cfg := jobConfig()
	res, err := RunJob(MasterOptions{Cfg: cfg, HeartbeatInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Every slave must be observed reaching finished; the
	// inactive→processing hop can be missed if the first heartbeat lands
	// after training started, but finished is always seen because the
	// heartbeat loop only exits on it.
	finished := map[int]bool{}
	for _, tr := range res.Transitions {
		if tr.From == tr.To {
			t.Fatalf("degenerate transition %+v", tr)
		}
		if tr.To == StateFinished {
			finished[tr.Slave] = true
		}
	}
	for s := 1; s <= cfg.NumCells(); s++ {
		if !finished[s] {
			t.Fatalf("slave %d never observed finished; transitions: %+v", s, res.Transitions)
		}
	}
}

func TestJobEventLogTellsFig3Story(t *testing.T) {
	cfg := jobConfig()
	res, err := RunJob(MasterOptions{Cfg: cfg, HeartbeatInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	log := strings.Join(res.Log, "\n")
	for _, want := range []string{"gathered", "placed", "run task", "collecting results", "best cell"} {
		if !strings.Contains(log, want) {
			t.Fatalf("event log missing %q:\n%s", want, log)
		}
	}
}

func TestJobTimeLimitAborts(t *testing.T) {
	cfg := jobConfig()
	cfg.Iterations = 10000 // would take far longer than the limit
	cfg.TimeLimit = 50 * time.Millisecond
	res, err := RunJob(MasterOptions{Cfg: cfg, HeartbeatInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("job did not abort on time limit")
	}
	for _, r := range res.Reports {
		if r.Iterations >= cfg.Iterations {
			t.Fatalf("cell %d completed all iterations despite abort", r.CellRank)
		}
	}
	// All slaves stop at a consistent iteration count thanks to the
	// abort-consensus exchange: counts may differ by at most one round.
	min, max := res.Reports[0].Iterations, res.Reports[0].Iterations
	for _, r := range res.Reports {
		if r.Iterations < min {
			min = r.Iterations
		}
		if r.Iterations > max {
			max = r.Iterations
		}
	}
	if max-min > 1 {
		t.Fatalf("abort left slaves %d..%d iterations apart", min, max)
	}
}

func TestRunMasterValidation(t *testing.T) {
	w := mpi.MustWorld(2)
	defer w.Close()
	c1 := w.MustComm(1)
	if _, err := RunMaster(c1, MasterOptions{Cfg: jobConfig()}); err == nil {
		t.Fatal("master on rank 1 accepted")
	}
	c0 := w.MustComm(0)
	if _, err := RunMaster(c0, MasterOptions{Cfg: jobConfig()}); err == nil {
		t.Fatal("wrong world size accepted") // 2×2 grid needs 5 ranks
	}
	bad := jobConfig()
	bad.BatchSize = 0
	if _, err := RunMaster(c0, MasterOptions{Cfg: bad}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunSlaveValidation(t *testing.T) {
	w := mpi.MustWorld(2)
	defer w.Close()
	if err := RunSlave(w.MustComm(0), nil); err == nil {
		t.Fatal("slave on rank 0 accepted")
	}
	if err := RunSlave(w.MustComm(1), nil); err == nil {
		t.Fatal("nil local communicator accepted")
	}
}

func TestRunJobRejectsInvalidConfig(t *testing.T) {
	bad := jobConfig()
	bad.Iterations = -1
	if _, err := RunJob(MasterOptions{Cfg: bad}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSlaveStateString(t *testing.T) {
	for st, want := range map[SlaveState]string{
		StateInactive:   "inactive",
		StateProcessing: "processing",
		StateFinished:   "finished",
		SlaveState(9):   "state(9)",
	} {
		if st.String() != want {
			t.Fatalf("%d -> %q want %q", st, st.String(), want)
		}
	}
}

func TestJobOverTCPTransport(t *testing.T) {
	// The same master/slave code over real sockets: 5 TCP nodes on
	// loopback running a tiny 2×2 job.
	if testing.Short() {
		t.Skip("TCP job in -short mode")
	}
	cfg := jobConfig()
	cfg.Iterations = 1
	n := cfg.NumTasks()
	nodes := make([]*mpi.TCPNode, n)
	addrs := make([]string, n)
	for r := 0; r < n; r++ {
		node, err := mpi.ListenTCP(r, n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[r] = node
		addrs[r] = node.Addr()
		defer node.Close()
	}
	type out struct {
		res *JobResult
		err error
	}
	results := make(chan out, n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			results <- func() out {
				if err := nodes[rank].Connect(addrs, 10*time.Second); err != nil {
					return out{err: err}
				}
				comm, err := nodes[rank].WorldComm()
				if err != nil {
					return out{err: err}
				}
				local, err := SplitLocal(comm)
				if err != nil {
					return out{err: err}
				}
				if rank == 0 {
					res, err := RunMaster(comm, MasterOptions{Cfg: cfg, HeartbeatInterval: 5 * time.Millisecond})
					return out{res: res, err: err}
				}
				return out{err: RunSlave(comm, local)}
			}()
		}(r)
	}
	var res *JobResult
	for i := 0; i < n; i++ {
		o := <-results
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.res != nil {
			res = o.res
		}
	}
	if res == nil || len(res.Reports) != cfg.NumCells() {
		t.Fatalf("TCP job result %+v", res)
	}
	for _, r := range res.Reports {
		if r.Error != "" {
			t.Fatalf("cell %d: %s", r.CellRank, r.Error)
		}
	}
}
