package cluster

import (
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"cellgan/internal/core"
	"cellgan/internal/mpi"
	"cellgan/internal/profile"
)

// slave bundles the state shared between a slave's main (communication)
// thread and its execution (training) thread — the two-thread structure of
// §III-B and Fig 3 (right).
type slave struct {
	world *mpi.Comm
	local *mpi.Comm

	state atomic.Uint32
	abort atomic.Bool

	// done is closed by the execution thread when training completes;
	// report holds the final result after that.
	done   chan struct{}
	report SlaveReport

	// Resilient-mode plumbing: the control loop stays the sole receiver
	// and forwards parsed neighbor sets to the execution thread.
	resilient  bool
	quit       chan struct{} // closed when the control loop exits
	neighborCh chan neighborSet

	// Async-mode plumbing: owner updates and release orders flow from
	// the control loop to the execution thread; tagAsyncState pushes are
	// received by the execution thread directly (they come from peers,
	// not the master, so the two receivers never contend for a message).
	async     bool
	ownerCh   chan ownerUpdate
	releaseCh chan releaseOrder

	// updMu guards latestUpdate (the cached last state upload, re-sent on
	// tagStateResend) and reports (the multi-cell result list).
	updMu        sync.Mutex
	latestUpdate []byte
	reports      []SlaveReport
}

func (s *slave) setState(st SlaveState) { s.state.Store(uint32(st)) }
func (s *slave) currentState() SlaveState {
	return SlaveState(s.state.Load())
}

// SlaveOptions tunes RunSlaveOpts beyond the plain worker role.
type SlaveOptions struct {
	// JoinSignal, when non-nil, marks this slave as an elastic reserve:
	// it idles after connecting, and when the channel is closed it asks
	// the master to join the running job (tagJoin) and receive
	// rebalanced cells. Only meaningful when the master runs in async
	// mode.
	JoinSignal <-chan struct{}
}

// RunSlave executes the slave role on a non-zero rank of comm. local must
// be the communicator returned by SplitLocal on this rank. The function
// returns when the master sends the shutdown message.
func RunSlave(comm *mpi.Comm, local *mpi.Comm) error {
	return RunSlaveOpts(comm, local, SlaveOptions{})
}

// RunSlaveOpts is RunSlave with elastic-membership options.
func RunSlaveOpts(comm *mpi.Comm, local *mpi.Comm, sopts SlaveOptions) error {
	if comm.Rank() == 0 {
		return fmt.Errorf("cluster: RunSlave must not run on rank 0")
	}
	if local == nil {
		return fmt.Errorf("cluster: RunSlave needs the LOCAL communicator")
	}
	s := &slave{
		world:      comm,
		local:      local,
		done:       make(chan struct{}),
		quit:       make(chan struct{}),
		neighborCh: make(chan neighborSet, 8),
		ownerCh:    make(chan ownerUpdate, 8),
		releaseCh:  make(chan releaseOrder, 8),
	}
	s.setState(StateInactive)
	// Whatever ends the control loop (shutdown, comm failure, injected
	// crash) must also release a blocked execution thread.
	defer close(s.quit)

	// Send this node's name to the master (Fig 3: "Send node name").
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = fmt.Sprintf("sim-node-%d", comm.Rank())
	}
	if err := comm.Send(0, tagNodeName, []byte(host)); err != nil {
		return fmt.Errorf("cluster: sending node name: %w", err)
	}

	if sopts.JoinSignal != nil {
		// Elastic reserve: ask to join when signalled. Best-effort — a
		// dead master ends the job anyway.
		go func() {
			select {
			case <-sopts.JoinSignal:
				comm.Send(0, tagJoin, []byte(host)) //nolint:errcheck
			case <-s.quit:
			}
		}()
	}

	// Main thread: serve the control protocol.
	for {
		m, err := comm.Recv(0, mpi.AnyTag)
		if err != nil {
			return fmt.Errorf("cluster: slave %d control recv: %w", comm.Rank(), err)
		}
		switch m.Tag {
		case tagRunTask:
			task, err := parseRunTask(m.Data)
			if err != nil {
				return err
			}
			if s.currentState() != StateInactive {
				return fmt.Errorf("cluster: slave %d got run task in state %s", comm.Rank(), s.currentState())
			}
			s.setState(StateProcessing)
			// Launch the execution thread (Fig 3: "Create execution
			// thread"); the main thread keeps serving heartbeats.
			switch {
			case task.Async:
				s.async = true
				go s.executeAsync(task)
			case task.Resilient:
				s.resilient = true
				go s.executeResilient(task)
			default:
				go s.execute(task)
			}
		case tagStatus:
			if err := comm.Send(0, tagStatus, []byte{byte(s.currentState())}); err != nil {
				return err
			}
		case tagAbort:
			s.abort.Store(true)
		case tagNeighborSet:
			ns, err := parseNeighborSet(m.Data)
			if err != nil {
				return err
			}
			// Non-blocking hand-off: a full channel means the execution
			// thread is behind on duplicates/resends it will dedupe anyway.
			select {
			case s.neighborCh <- ns:
			default:
			}
		case tagOwnerUpdate:
			u, err := parseOwnerUpdate(m.Data)
			if err != nil {
				return err
			}
			if s.currentState() == StateInactive {
				break // no execution thread yet; the master re-sends
			}
			// Blocking hand-off: an owner update can carry a join grant
			// or the done signal, which must not be dropped. The
			// execution thread drains the channel every pass, and a
			// finished thread is covered by the done fallback.
			select {
			case s.ownerCh <- u:
			case <-s.done:
			}
		case tagRelease:
			r, err := parseReleaseOrder(m.Data)
			if err != nil {
				return err
			}
			if s.currentState() == StateInactive {
				break
			}
			select {
			case s.releaseCh <- r:
			case <-s.done:
			}
		case tagStateResend:
			s.updMu.Lock()
			upd := s.latestUpdate
			s.updMu.Unlock()
			if upd != nil {
				if err := comm.Send(0, tagStateUpdate, upd); err != nil {
					return err
				}
			}
		case tagCollect:
			if s.resilient || s.async {
				// Non-blocking: an empty reply means "not finished yet"
				// and the master retries after re-sending the last round.
				var payload []byte
				select {
				case <-s.done:
					s.updMu.Lock()
					rs := s.reports
					s.updMu.Unlock()
					payload, err = marshalReports(rs)
					if err != nil {
						return err
					}
				default:
				}
				if err := comm.Send(0, tagResult, payload); err != nil {
					return err
				}
				break
			}
			<-s.done // training must be over before reporting
			payload, err := s.report.marshal()
			if err != nil {
				return err
			}
			if err := comm.Send(0, tagResult, payload); err != nil {
				return err
			}
		case tagShutdown:
			return nil
		default:
			return fmt.Errorf("cluster: slave %d unexpected control tag %d", comm.Rank(), m.Tag)
		}
	}
}

// execute is the slave's execution thread: it assembles the grid, trains
// the assigned cell, exchanging centers with neighbouring slaves on the
// LOCAL communicator each iteration, and prepares the final report.
func (s *slave) execute(task runTask) {
	defer close(s.done)
	defer s.setState(StateFinished)

	prof := profile.New()
	report := SlaveReport{CellRank: task.CellRank, Node: task.Node}
	fail := func(err error) {
		// Training failures surface through the report; the control
		// protocol stays alive so the master can collect and shut down.
		report.Error = err.Error()
		report.MixtureFitness = inf()
		s.report = report
	}

	g, err := core.BuildGridFor(task.Cfg)
	if err != nil {
		fail(err)
		return
	}
	cell, err := core.NewCell(task.Cfg, task.CellRank, g, prof)
	if err != nil {
		fail(err)
		return
	}
	if err := restoreTaskFull(cell, task); err != nil {
		fail(err)
		return
	}

	// exchange allgathers centers on the LOCAL communicator with an
	// abort-consensus byte: if any slave has seen the master's abort, all
	// slaves observe it in the same round and stop together, keeping the
	// collective call counts aligned.
	exchange := func() (stop bool, err error) {
		state, err := cell.State()
		if err != nil {
			return false, err
		}
		payload := append([]byte{abortByte(s.abort.Load())}, state.Marshal()...)
		stopTimer := prof.Start(profile.RoutineGather)
		parts, err := s.local.Allgather(payload)
		stopTimer()
		if err != nil {
			return false, err
		}
		states := make(map[int]*core.CellState, len(parts))
		anyAbort := false
		for _, p := range parts {
			if len(p) < 1 {
				return false, fmt.Errorf("cluster: empty exchange payload")
			}
			if p[0] != 0 {
				anyAbort = true
			}
			st, err := core.UnmarshalCellState(p[1:])
			if err != nil {
				return false, err
			}
			states[st.Rank] = st
		}
		if err := cell.SetNeighbors(states); err != nil {
			return false, err
		}
		return anyAbort, nil
	}

	if stop, err := exchange(); err != nil {
		fail(err)
		return
	} else if stop {
		report.Aborted = true
	}
	var last core.IterStats
	// The loop is driven by the cell's own iteration counter so a cell
	// restored from a checkpoint runs exactly the iterations it still
	// owes; every slave restores to the same iteration (the master
	// validated that), keeping the allgather call counts aligned.
	for cell.Iteration() < task.Cfg.Iterations && !report.Aborted {
		last, err = cell.Iterate()
		if err != nil {
			fail(err)
			return
		}
		stop, err := exchange()
		if err != nil {
			fail(err)
			return
		}
		if stop {
			report.Aborted = true
		}
	}

	finalState, err := cell.State()
	if err != nil {
		fail(err)
		return
	}
	report.Iterations = cell.Iteration()
	report.MixtureFitness = last.MixtureFitness
	if cell.Iteration() == 0 {
		// Aborted before any training: never the best mixture.
		report.MixtureFitness = inf()
	}
	report.MixtureRanks = append([]int(nil), cell.Mixture().Ranks...)
	report.MixtureWeights = append([]float64(nil), cell.Mixture().Weights...)
	report.State = finalState.Marshal()
	if f, err := cell.FullState(); err == nil {
		report.Full = f.Marshal()
	}
	report.Profile = profile.EncodeSnapshot(prof.Snapshot())
	s.report = report
}

// restoreTaskFull restores a dispatched cell from the run task's full
// state, when the master sent one (the whole-job resume path).
func restoreTaskFull(cell *core.Cell, task runTask) error {
	if len(task.Full) == 0 {
		return nil
	}
	f, err := core.UnmarshalFullState(task.Full)
	if err != nil {
		return fmt.Errorf("cluster: decoding dispatched resume state: %w", err)
	}
	if err := cell.RestoreFull(f); err != nil {
		return fmt.Errorf("cluster: restoring dispatched resume state: %w", err)
	}
	return nil
}

// executeResilient is the execution thread in failure-tolerant mode: the
// per-iteration neighbour exchange is routed through the master in
// globally-synchronous rounds (upload full state → receive neighbor set →
// iterate) instead of the LOCAL allgather. The indirection is what makes
// recovery possible: the master always holds every cell's last full state,
// so when a slave dies it can re-dispatch the lost cells to survivors via
// adoption orders — which this thread applies by rebuilding the cell and
// restoring bit-exact state (core.RestoreFull).
func (s *slave) executeResilient(task runTask) {
	defer close(s.done)
	defer s.setState(StateFinished)

	prof := profile.New()
	finishErr := func(err error) {
		s.updMu.Lock()
		s.reports = []SlaveReport{{
			CellRank: task.CellRank, Node: task.Node,
			MixtureFitness: inf(), Error: err.Error(),
		}}
		s.updMu.Unlock()
	}

	g, err := core.BuildGridFor(task.Cfg)
	if err != nil {
		finishErr(err)
		return
	}
	owned := make(map[int]*core.Cell)
	failed := make(map[int]bool)
	errNote := make(map[int]string)
	fitness := make(map[int]float64)
	cell, err := core.NewCell(task.Cfg, task.CellRank, g, prof)
	if err != nil {
		finishErr(err)
		return
	}
	if err := restoreTaskFull(cell, task); err != nil {
		finishErr(err)
		return
	}
	owned[task.CellRank] = cell
	fitness[task.CellRank] = inf()

	target := task.Cfg.Iterations
	round := 0
	for {
		// (1) Upload the full state of every owned cell for this round.
		upd := stateUpdate{Slave: s.world.Rank(), Round: round}
		for _, r := range sortedRanks(owned) {
			c := owned[r]
			f, err := c.FullState()
			if err != nil {
				finishErr(err)
				return
			}
			upd.Cells = append(upd.Cells, cellBlob{
				CellRank: r, Iteration: c.Iteration(), Full: f.Marshal(),
				Failed: failed[r], Error: errNote[r], Fitness: fitness[r],
			})
		}
		payload, err := upd.marshal()
		if err != nil {
			finishErr(err)
			return
		}
		s.updMu.Lock()
		s.latestUpdate = payload
		s.updMu.Unlock()
		if err := s.world.Send(0, tagStateUpdate, payload); err != nil {
			finishErr(err)
			return
		}

		// (2) Await this round's neighbor set; duplicates and stale
		// resends carry a lower round number and are dropped.
		var ns neighborSet
		for {
			select {
			case ns = <-s.neighborCh:
			case <-s.quit:
				finishErr(fmt.Errorf("cluster: slave %d control loop exited mid-round", s.world.Rank()))
				return
			}
			if ns.Round >= round {
				break
			}
		}

		// (3) Adopt cells reassigned from a dead slave, restoring their
		// last gathered state (adoption is idempotent under resends).
		for _, ad := range ns.Adopt {
			if _, ok := owned[ad.CellRank]; ok {
				continue
			}
			c, err := core.NewCell(task.Cfg, ad.CellRank, g, prof)
			if err != nil {
				finishErr(err)
				return
			}
			if len(ad.Full) > 0 {
				f, err := core.UnmarshalFullState(ad.Full)
				if err != nil {
					finishErr(err)
					return
				}
				if err := c.RestoreFull(f); err != nil {
					finishErr(err)
					return
				}
			}
			owned[ad.CellRank] = c
			failed[ad.CellRank] = ad.Failed
			errNote[ad.CellRank] = ad.Error
			fitness[ad.CellRank] = ad.Fitness
		}

		// (4) Neighbour exchange: apply every cell's state, exactly like
		// the allgather path but sourced from the master's merged view.
		states := make(map[int]*core.CellState, len(ns.States))
		for _, ws := range ns.States {
			st, err := core.UnmarshalCellState(ws.Data)
			if err != nil {
				finishErr(err)
				return
			}
			states[st.Rank] = st
		}
		for _, r := range sortedRanks(owned) {
			if err := owned[r].SetNeighbors(states); err != nil {
				finishErr(err)
				return
			}
		}

		if ns.Done {
			s.finalizeResilient(task, owned, failed, errNote, fitness, ns.Abort, prof)
			return
		}

		// (5) Train one iteration on every unfinished cell. Per-cell
		// failures are reported upward instead of stalling the round.
		for _, r := range sortedRanks(owned) {
			c := owned[r]
			if failed[r] || c.Iteration() >= target {
				continue
			}
			stats, err := c.Iterate()
			if err != nil {
				failed[r] = true
				errNote[r] = err.Error()
				continue
			}
			fitness[r] = stats.MixtureFitness
		}
		round = ns.Round + 1
	}
}

// finalizeResilient builds one report per owned cell after the Done round.
func (s *slave) finalizeResilient(task runTask, owned map[int]*core.Cell, failed map[int]bool, errNote map[int]string, fitness map[int]float64, aborted bool, prof *profile.Profiler) {
	profBytes := profile.EncodeSnapshot(prof.Snapshot())
	var reports []SlaveReport
	for _, r := range sortedRanks(owned) {
		c := owned[r]
		rep := SlaveReport{
			CellRank: r, Node: task.Node, Iterations: c.Iteration(),
			Aborted: aborted, Profile: profBytes, Error: errNote[r],
			MixtureFitness: fitness[r],
		}
		if c.Iteration() == 0 || failed[r] {
			rep.MixtureFitness = inf()
		}
		if st, err := c.State(); err == nil {
			rep.State = st.Marshal()
		}
		if f, err := c.FullState(); err == nil {
			rep.Full = f.Marshal()
		}
		rep.MixtureRanks = append([]int(nil), c.Mixture().Ranks...)
		rep.MixtureWeights = append([]float64(nil), c.Mixture().Weights...)
		reports = append(reports, rep)
	}
	s.updMu.Lock()
	s.reports = reports
	s.updMu.Unlock()
}

// sortedRanks returns the owned cell ranks in ascending order, keeping
// per-round work deterministic regardless of map iteration order.
func sortedRanks(owned map[int]*core.Cell) []int {
	ranks := make([]int, 0, len(owned))
	for r := range owned {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

func abortByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// inf is a large finite "never the best" fitness sentinel; real +Inf is
// not JSON-encodable, which the report marshalling requires.
func inf() float64 { return math.MaxFloat64 }
