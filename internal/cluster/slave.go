package cluster

import (
	"fmt"
	"math"
	"os"
	"sync/atomic"

	"cellgan/internal/core"
	"cellgan/internal/mpi"
	"cellgan/internal/profile"
)

// slave bundles the state shared between a slave's main (communication)
// thread and its execution (training) thread — the two-thread structure of
// §III-B and Fig 3 (right).
type slave struct {
	world *mpi.Comm
	local *mpi.Comm

	state atomic.Uint32
	abort atomic.Bool

	// done is closed by the execution thread when training completes;
	// report holds the final result after that.
	done   chan struct{}
	report SlaveReport
}

func (s *slave) setState(st SlaveState) { s.state.Store(uint32(st)) }
func (s *slave) currentState() SlaveState {
	return SlaveState(s.state.Load())
}

// RunSlave executes the slave role on a non-zero rank of comm. local must
// be the communicator returned by SplitLocal on this rank. The function
// returns when the master sends the shutdown message.
func RunSlave(comm *mpi.Comm, local *mpi.Comm) error {
	if comm.Rank() == 0 {
		return fmt.Errorf("cluster: RunSlave must not run on rank 0")
	}
	if local == nil {
		return fmt.Errorf("cluster: RunSlave needs the LOCAL communicator")
	}
	s := &slave{world: comm, local: local, done: make(chan struct{})}
	s.setState(StateInactive)

	// Send this node's name to the master (Fig 3: "Send node name").
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = fmt.Sprintf("sim-node-%d", comm.Rank())
	}
	if err := comm.Send(0, tagNodeName, []byte(host)); err != nil {
		return fmt.Errorf("cluster: sending node name: %w", err)
	}

	// Main thread: serve the control protocol.
	for {
		m, err := comm.Recv(0, mpi.AnyTag)
		if err != nil {
			return fmt.Errorf("cluster: slave %d control recv: %w", comm.Rank(), err)
		}
		switch m.Tag {
		case tagRunTask:
			task, err := parseRunTask(m.Data)
			if err != nil {
				return err
			}
			if s.currentState() != StateInactive {
				return fmt.Errorf("cluster: slave %d got run task in state %s", comm.Rank(), s.currentState())
			}
			s.setState(StateProcessing)
			// Launch the execution thread (Fig 3: "Create execution
			// thread"); the main thread keeps serving heartbeats.
			go s.execute(task)
		case tagStatus:
			if err := comm.Send(0, tagStatus, []byte{byte(s.currentState())}); err != nil {
				return err
			}
		case tagAbort:
			s.abort.Store(true)
		case tagCollect:
			<-s.done // training must be over before reporting
			payload, err := s.report.marshal()
			if err != nil {
				return err
			}
			if err := comm.Send(0, tagResult, payload); err != nil {
				return err
			}
		case tagShutdown:
			return nil
		default:
			return fmt.Errorf("cluster: slave %d unexpected control tag %d", comm.Rank(), m.Tag)
		}
	}
}

// execute is the slave's execution thread: it assembles the grid, trains
// the assigned cell, exchanging centers with neighbouring slaves on the
// LOCAL communicator each iteration, and prepares the final report.
func (s *slave) execute(task runTask) {
	defer close(s.done)
	defer s.setState(StateFinished)

	prof := profile.New()
	report := SlaveReport{CellRank: task.CellRank, Node: task.Node}
	fail := func(err error) {
		// Training failures surface through the report; the control
		// protocol stays alive so the master can collect and shut down.
		report.Error = err.Error()
		report.MixtureFitness = inf()
		s.report = report
	}

	g, err := core.BuildGridFor(task.Cfg)
	if err != nil {
		fail(err)
		return
	}
	cell, err := core.NewCell(task.Cfg, task.CellRank, g, prof)
	if err != nil {
		fail(err)
		return
	}

	// exchange allgathers centers on the LOCAL communicator with an
	// abort-consensus byte: if any slave has seen the master's abort, all
	// slaves observe it in the same round and stop together, keeping the
	// collective call counts aligned.
	exchange := func() (stop bool, err error) {
		state, err := cell.State()
		if err != nil {
			return false, err
		}
		payload := append([]byte{abortByte(s.abort.Load())}, state.Marshal()...)
		stopTimer := prof.Start(profile.RoutineGather)
		parts, err := s.local.Allgather(payload)
		stopTimer()
		if err != nil {
			return false, err
		}
		states := make(map[int]*core.CellState, len(parts))
		anyAbort := false
		for _, p := range parts {
			if len(p) < 1 {
				return false, fmt.Errorf("cluster: empty exchange payload")
			}
			if p[0] != 0 {
				anyAbort = true
			}
			st, err := core.UnmarshalCellState(p[1:])
			if err != nil {
				return false, err
			}
			states[st.Rank] = st
		}
		if err := cell.SetNeighbors(states); err != nil {
			return false, err
		}
		return anyAbort, nil
	}

	if stop, err := exchange(); err != nil {
		fail(err)
		return
	} else if stop {
		report.Aborted = true
	}
	var last core.IterStats
	for iter := 0; iter < task.Cfg.Iterations && !report.Aborted; iter++ {
		last, err = cell.Iterate()
		if err != nil {
			fail(err)
			return
		}
		stop, err := exchange()
		if err != nil {
			fail(err)
			return
		}
		if stop {
			report.Aborted = true
		}
	}

	finalState, err := cell.State()
	if err != nil {
		fail(err)
		return
	}
	report.Iterations = cell.Iteration()
	report.MixtureFitness = last.MixtureFitness
	if cell.Iteration() == 0 {
		// Aborted before any training: never the best mixture.
		report.MixtureFitness = inf()
	}
	report.MixtureRanks = append([]int(nil), cell.Mixture().Ranks...)
	report.MixtureWeights = append([]float64(nil), cell.Mixture().Weights...)
	report.State = finalState.Marshal()
	report.Profile = profile.EncodeSnapshot(prof.Snapshot())
	s.report = report
}

func abortByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// inf is a large finite "never the best" fitness sentinel; real +Inf is
// not JSON-encodable, which the report marshalling requires.
func inf() float64 { return math.MaxFloat64 }
