// Package cluster implements the master/slave execution runtime of the
// paper's §III: a master process that inventories computing resources,
// decides task placement, distributes the parameter configuration,
// launches slaves, monitors them through a heartbeat thread, and gathers
// final results; and slave processes whose main thread serves the control
// protocol while an execution thread performs the cellular GAN training.
//
// The underlying platform — the National Supercomputing Center
// (Cluster-UY) with its slurm best-effort queue — is simulated by an
// in-memory node inventory and a load-balancing placement strategy, which
// reproduces the resource-allocation figures of the paper's Table II.
package cluster

import (
	"fmt"
	"sort"
)

// Node describes one compute server of the simulated cluster.
type Node struct {
	// Name identifies the node.
	Name string
	// Cores is the number of CPU cores (40 on Cluster-UY).
	Cores int
	// MemoryMB is the node RAM (128 GB on Cluster-UY).
	MemoryMB int
}

// Inventory is the set of nodes a job may run on.
type Inventory []Node

// DefaultInventory models Cluster-UY: up to 30 servers, each with 40-core
// Xeon Gold 6138 processors and 128 GB of RAM (§IV-B).
func DefaultInventory() Inventory {
	inv := make(Inventory, 30)
	for i := range inv {
		inv[i] = Node{Name: fmt.Sprintf("node%02d", i+1), Cores: 40, MemoryMB: 128 * 1024}
	}
	return inv
}

// Placement assigns one MPI task to a core of a node.
type Placement struct {
	// Task is the MPI rank (0 = master).
	Task int
	// Node is the hosting node's name.
	Node string
	// Core is the core index on that node.
	Core int
}

// Allocate places tasks onto the inventory with the paper's strategy:
// minimise and balance the load on each node (§III-B), i.e. each task goes
// to the node with the fewest tasks so far that still has a free core and
// enough memory. It returns one placement per task, task order.
func Allocate(inv Inventory, tasks, memPerTaskMB int) ([]Placement, error) {
	if tasks <= 0 {
		return nil, fmt.Errorf("cluster: task count %d must be positive", tasks)
	}
	if memPerTaskMB < 0 {
		return nil, fmt.Errorf("cluster: memory per task %d must be non-negative", memPerTaskMB)
	}
	if len(inv) == 0 {
		return nil, fmt.Errorf("cluster: empty inventory")
	}
	type load struct {
		node    Node
		used    int // cores in use
		memUsed int
	}
	loads := make([]*load, len(inv))
	for i, n := range inv {
		if n.Cores <= 0 || n.MemoryMB < 0 {
			return nil, fmt.Errorf("cluster: node %q has invalid resources (%d cores, %d MB)", n.Name, n.Cores, n.MemoryMB)
		}
		loads[i] = &load{node: n}
	}
	out := make([]Placement, 0, tasks)
	for task := 0; task < tasks; task++ {
		// Pick the least-loaded feasible node; ties break by name for
		// determinism.
		var best *load
		for _, l := range loads {
			if l.used >= l.node.Cores || l.memUsed+memPerTaskMB > l.node.MemoryMB {
				continue
			}
			if best == nil || l.used < best.used || (l.used == best.used && l.node.Name < best.node.Name) {
				best = l
			}
		}
		if best == nil {
			return nil, fmt.Errorf("cluster: cannot place task %d: no node with a free core and %d MB", task, memPerTaskMB)
		}
		out = append(out, Placement{Task: task, Node: best.node.Name, Core: best.used})
		best.used++
		best.memUsed += memPerTaskMB
	}
	return out, nil
}

// Summary aggregates a placement list into per-node task counts, sorted by
// node name — the form reported in job logs.
func Summary(ps []Placement) []struct {
	Node  string
	Tasks int
} {
	counts := map[string]int{}
	for _, p := range ps {
		counts[p.Node]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]struct {
		Node  string
		Tasks int
	}, len(names))
	for i, n := range names {
		out[i].Node = n
		out[i].Tasks = counts[n]
	}
	return out
}
