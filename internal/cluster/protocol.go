package cluster

import (
	"encoding/json"
	"fmt"
	"time"

	"cellgan/internal/config"
	"cellgan/internal/core"
	"cellgan/internal/profile"
)

// Control-message tags on the WORLD communicator (master rank 0 ↔ slaves).
const (
	// tagNodeName: slave → master, the slave's (simulated) host name.
	tagNodeName = 100
	// tagRunTask: master → slave, the runTask payload; flips the slave
	// from inactive to processing (Fig 2).
	tagRunTask = 101
	// tagStatus: heartbeat round trip — master sends an empty probe, the
	// slave's main thread answers with its current state byte.
	tagStatus = 102
	// tagAbort: master → slave, cooperative stop (time limit exceeded).
	tagAbort = 103
	// tagCollect: master → slave, request the final report.
	tagCollect = 104
	// tagResult: slave → master, the slaveReport payload.
	tagResult = 105
	// tagShutdown: master → slave, terminate the main loop.
	tagShutdown = 106
	// tagStateUpdate: slave → master (resilient mode), the per-round
	// stateUpdate carrying full training state of every owned cell.
	tagStateUpdate = 107
	// tagNeighborSet: master → slave (resilient mode), the per-round
	// neighborSet with every cell's exchanged state plus adoption orders.
	tagNeighborSet = 108
	// tagStateResend: master → slave (resilient mode), ask the slave to
	// re-send its latest state update (the previous one was lost).
	tagStateResend = 109
	// tagJoin: slave → master (async mode), a connected-but-idle slave
	// asks to join the running job and receive rebalanced cells.
	tagJoin = 110
	// tagOwnerUpdate: master → slave (async mode), the ownerUpdate with
	// the current cell→owner map, adoption orders and seed states. The
	// join grant, the rebalance broadcast and the done signal are all
	// instances of this one message.
	tagOwnerUpdate = 111
	// tagRelease: master → slave (async mode), order the slave to stop
	// training the listed cells and return their state (a rebalance is
	// the inverse of an eviction: cells move toward a joiner, not away
	// from a corpse).
	tagRelease = 112
	// tagReleaseAck: slave → master (async mode), the released cells'
	// final state as a stateUpdate payload.
	tagReleaseAck = 113
	// tagAsyncState: slave ↔ slave (async mode), a cell's center snapshot
	// pushed directly to the owners of its influence set — the cluster
	// form of core.RunAsync's exchange, with no master round-trip.
	tagAsyncState = 114
)

// maxProtocolCells bounds every cell list a protocol message may carry —
// generously above the largest supported grid (64×64), small enough that
// a hostile or corrupted payload cannot balloon the master's state.
const maxProtocolCells = 4096

// SlaveState is the state machine of Fig 2.
type SlaveState byte

// Slave states and their transitions: inactive → processing on run task,
// processing → finished after the last training iteration.
const (
	StateInactive SlaveState = iota
	StateProcessing
	StateFinished
)

// String renders the state name.
func (s SlaveState) String() string {
	switch s {
	case StateInactive:
		return "inactive"
	case StateProcessing:
		return "processing"
	case StateFinished:
		return "finished"
	default:
		return fmt.Sprintf("state(%d)", byte(s))
	}
}

// runTask is the workload assignment a slave receives from the master.
type runTask struct {
	// Cfg is the full experiment configuration (Table I).
	Cfg config.Config `json:"cfg"`
	// CellRank is the grid cell this slave trains (slave i ↦ cell i-1).
	CellRank int `json:"cell_rank"`
	// Node is where the master placed this task.
	Node string `json:"node"`
	// Core is the core index assigned on the node.
	Core int `json:"core"`
	// Resilient selects the failure-tolerant exchange mode: the slave
	// routes per-iteration neighbour exchange through the master
	// (tagStateUpdate/tagNeighborSet rounds) instead of the LOCAL
	// allgather, so the master can reassign cells when a slave dies.
	Resilient bool `json:"resilient,omitempty"`
	// Async selects the asynchronous cluster exchange: cells push center
	// snapshots directly to the owners of their influence set
	// (tagAsyncState) under a bounded-staleness window, with no rounds
	// and no barrier.
	Async bool `json:"async,omitempty"`
	// Joiner marks a task granted to a mid-run joiner: CellRank is -1 and
	// the slave's initial cells arrive in the first ownerUpdate instead.
	Joiner bool `json:"joiner,omitempty"`
	// Full, when non-empty, is the marshalled core.FullState the slave
	// restores its cell from before training — the whole-job resume path.
	// Empty means a fresh start.
	Full []byte `json:"full,omitempty"`
}

func (r runTask) marshal() ([]byte, error) { return json.Marshal(r) }

func parseRunTask(data []byte) (runTask, error) {
	var r runTask
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("cluster: parsing run task: %w", err)
	}
	if err := r.Cfg.Validate(); err != nil {
		return r, err
	}
	return r, nil
}

// SlaveReport is a slave's final result returned to the master.
type SlaveReport struct {
	// CellRank is the grid cell the slave trained.
	CellRank int `json:"cell_rank"`
	// Node echoes the placement for log correlation.
	Node string `json:"node"`
	// Iterations completed (may be short of the target when aborted).
	Iterations int `json:"iterations"`
	// Aborted reports whether the slave stopped on an abort consensus.
	Aborted bool `json:"aborted"`
	// MixtureFitness is the final mixture fitness (lower = better).
	MixtureFitness float64 `json:"mixture_fitness"`
	// MixtureRanks and MixtureWeights describe the returned mixture.
	MixtureRanks   []int     `json:"mixture_ranks"`
	MixtureWeights []float64 `json:"mixture_weights"`
	// State is the marshalled core.CellState of the final centers.
	State []byte `json:"state"`
	// Profile is the slave's routine timing snapshot.
	Profile []byte `json:"profile"`
	// Full is the marshalled core.FullState of the cell at the end of
	// training (resilient mode only): the bit-exact resume state used by
	// the golden determinism checks and checkpoint export.
	Full []byte `json:"full,omitempty"`
	// Error is non-empty when the slave's training failed; the control
	// protocol still completes so the master can collect and shut down.
	Error string `json:"error,omitempty"`
}

func (r SlaveReport) marshal() ([]byte, error) { return json.Marshal(r) }

func parseSlaveReport(data []byte) (SlaveReport, error) {
	var r SlaveReport
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("cluster: parsing slave report: %w", err)
	}
	return r, nil
}

// marshalReports encodes the multi-cell report list a resilient slave
// returns on tagCollect (a slave owns several cells after adoptions).
func marshalReports(rs []SlaveReport) ([]byte, error) { return json.Marshal(rs) }

// parseSlaveReports decodes a report list; an empty payload means the
// slave is not finished yet (the master retries).
func parseSlaveReports(data []byte) ([]SlaveReport, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var rs []SlaveReport
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("cluster: parsing slave reports: %w", err)
	}
	return rs, nil
}

// cellBlob carries one cell's complete training state (a marshalled
// core.FullState) between slave and master. It is the unit of both the
// per-round state upload and the adoption order that re-dispatches a dead
// slave's cell to a survivor.
type cellBlob struct {
	CellRank  int `json:"cell_rank"`
	Iteration int `json:"iteration"`
	// Full is the marshalled core.FullState; nil in an adoption order
	// means "start the cell from scratch" (no state was ever gathered).
	Full []byte `json:"full,omitempty"`
	// Failed marks a cell whose training errored; the master stops
	// scheduling iterations for it.
	Failed bool   `json:"failed,omitempty"`
	Error  string `json:"error,omitempty"`
	// Fitness is the cell's current mixture fitness (inf() until the
	// first iteration completes).
	Fitness float64 `json:"fitness"`
}

// stateUpdate is a resilient slave's per-round upload: the full state of
// every cell it owns, tagged with the globally-synchronous round number.
type stateUpdate struct {
	Slave int        `json:"slave"`
	Round int        `json:"round"`
	Cells []cellBlob `json:"cells"`
}

func (u stateUpdate) marshal() ([]byte, error) { return json.Marshal(u) }

func parseStateUpdate(data []byte) (stateUpdate, error) {
	var u stateUpdate
	if err := json.Unmarshal(data, &u); err != nil {
		return u, fmt.Errorf("cluster: parsing state update: %w", err)
	}
	return u, nil
}

// wireState is one cell's exchanged centers (a marshalled core.CellState)
// inside a neighborSet.
type wireState struct {
	Rank int    `json:"rank"`
	Iter int    `json:"iter"`
	Data []byte `json:"data"`
}

// neighborSet is the master's per-round reply in resilient mode: the
// exchanged state of every grid cell (replacing the LOCAL allgather),
// adoption orders for reassigned cells, and the round-control flags.
type neighborSet struct {
	Round int `json:"round"`
	// Done ends training: slaves finalise their reports after applying
	// this set. Abort marks a time-limit stop (Done is also set).
	Done  bool `json:"done,omitempty"`
	Abort bool `json:"abort,omitempty"`
	// States holds every cell's current exchange state, sorted by rank.
	States []wireState `json:"states"`
	// Adopt lists cells this slave must take over from a dead peer,
	// restoring from the embedded full state.
	Adopt []cellBlob `json:"adopt,omitempty"`
}

func (n neighborSet) marshal() ([]byte, error) { return json.Marshal(n) }

func parseNeighborSet(data []byte) (neighborSet, error) {
	var n neighborSet
	if err := json.Unmarshal(data, &n); err != nil {
		return n, fmt.Errorf("cluster: parsing neighbor set: %w", err)
	}
	return n, nil
}

// ownerUpdate is the master's asynchronous-mode control message: the
// authoritative cell→owner map plus whatever this particular update
// delivers — adoption orders for a joiner or rebalance target, seed
// snapshots to prime neighbour views, failed-cell marks that lift the
// staleness gate, or the done flag that ends training. One message type
// with one validating parser keeps the decoder surface small enough to
// fuzz exhaustively.
type ownerUpdate struct {
	// Version orders updates; a slave ignores any update older than the
	// newest it has applied (resends and reordered deliveries are
	// expected under chaos).
	Version int `json:"version"`
	// Owners maps cell rank → owning slave world rank (0 = unassigned).
	Owners []int `json:"owners"`
	// Failed lists cells whose training errored; peers stop gating on
	// them.
	Failed []int `json:"failed,omitempty"`
	// Adopt lists cells the receiving slave must take over, restoring
	// the embedded full state.
	Adopt []cellBlob `json:"adopt,omitempty"`
	// States seeds neighbour views (a joiner starts mid-run and cannot
	// wait for organic pushes to cover the whole neighbourhood).
	States []wireState `json:"states,omitempty"`
	// Done ends training; Abort marks a time-limit or interrupt stop.
	Done  bool `json:"done,omitempty"`
	Abort bool `json:"abort,omitempty"`
}

func (u ownerUpdate) marshal() ([]byte, error) { return json.Marshal(u) }

// parseOwnerUpdate decodes and validates an ownerUpdate. Every accepted
// message satisfies: non-negative version, bounded cell lists, every cell
// rank within the owner map, and no duplicate adoption orders — the
// invariants the async slave loop relies on without re-checking.
func parseOwnerUpdate(data []byte) (ownerUpdate, error) {
	var u ownerUpdate
	if err := json.Unmarshal(data, &u); err != nil {
		return u, fmt.Errorf("cluster: parsing owner update: %w", err)
	}
	if u.Version < 0 {
		return u, fmt.Errorf("cluster: owner update with negative version %d", u.Version)
	}
	n := len(u.Owners)
	if n == 0 || n > maxProtocolCells {
		return u, fmt.Errorf("cluster: owner update with %d cells (want 1..%d)", n, maxProtocolCells)
	}
	for c, o := range u.Owners {
		if o < 0 {
			return u, fmt.Errorf("cluster: cell %d has negative owner %d", c, o)
		}
	}
	if len(u.Failed) > n || len(u.Adopt) > n || len(u.States) > n {
		return u, fmt.Errorf("cluster: owner update lists exceed %d cells", n)
	}
	for _, c := range u.Failed {
		if c < 0 || c >= n {
			return u, fmt.Errorf("cluster: failed cell %d out of range [0,%d)", c, n)
		}
	}
	seen := make(map[int]bool, len(u.Adopt))
	for _, ad := range u.Adopt {
		if ad.CellRank < 0 || ad.CellRank >= n {
			return u, fmt.Errorf("cluster: adopt cell %d out of range [0,%d)", ad.CellRank, n)
		}
		if seen[ad.CellRank] {
			return u, fmt.Errorf("cluster: duplicate adopt order for cell %d", ad.CellRank)
		}
		seen[ad.CellRank] = true
		if ad.Iteration < 0 {
			return u, fmt.Errorf("cluster: adopt cell %d with negative iteration %d", ad.CellRank, ad.Iteration)
		}
	}
	for _, ws := range u.States {
		if ws.Rank < 0 || ws.Rank >= n {
			return u, fmt.Errorf("cluster: seed state for cell %d out of range [0,%d)", ws.Rank, n)
		}
	}
	return u, nil
}

// releaseOrder tells a slave to stop training the listed cells and return
// their state (tagReleaseAck); the cells are moving to another owner.
type releaseOrder struct {
	Version int   `json:"version"`
	Cells   []int `json:"cells"`
}

func (r releaseOrder) marshal() ([]byte, error) { return json.Marshal(r) }

// parseReleaseOrder decodes and validates a releaseOrder: non-negative
// version, a bounded, duplicate-free, non-negative cell list.
func parseReleaseOrder(data []byte) (releaseOrder, error) {
	var r releaseOrder
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("cluster: parsing release order: %w", err)
	}
	if r.Version < 0 {
		return r, fmt.Errorf("cluster: release order with negative version %d", r.Version)
	}
	if len(r.Cells) == 0 || len(r.Cells) > maxProtocolCells {
		return r, fmt.Errorf("cluster: release order with %d cells (want 1..%d)", len(r.Cells), maxProtocolCells)
	}
	seen := make(map[int]bool, len(r.Cells))
	for _, c := range r.Cells {
		if c < 0 || c >= maxProtocolCells {
			return r, fmt.Errorf("cluster: release of cell %d out of range [0,%d)", c, maxProtocolCells)
		}
		if seen[c] {
			return r, fmt.Errorf("cluster: duplicate release of cell %d", c)
		}
		seen[c] = true
	}
	return r, nil
}

// Transition is one observed slave state change, the raw material of the
// Fig 2 state diagram.
type Transition struct {
	Slave int
	From  SlaveState
	To    SlaveState
	At    time.Time
}

// JobResult is the master's aggregate outcome of one training job.
type JobResult struct {
	// Reports holds one report per slave, ordered by cell rank.
	Reports []SlaveReport
	// BestCell is the grid rank whose mixture fitness is lowest.
	BestCell int
	// Aborted reports whether the job hit its time limit.
	Aborted bool
	// Elapsed is the wall-clock duration of the job.
	Elapsed time.Duration
	// Transitions is the observed slave state-machine trace.
	Transitions []Transition
	// Placements is the task → node/core assignment used.
	Placements []Placement
	// Profile is the merged routine profile across all slaves.
	Profile map[string]profile.Stat
	// Log is the master's event log (the Fig 3 flow trace).
	Log []string
}

// Best returns the report of the winning cell.
func (j *JobResult) Best() SlaveReport {
	for _, r := range j.Reports {
		if r.CellRank == j.BestCell {
			return r
		}
	}
	return SlaveReport{}
}

// FullStates decodes every report's full training state in cell-rank
// order — the raw material of a final whole-job checkpoint. It fails if
// any cell's report lacks a full state (a pre-PR-9 plain run, or a cell
// lost before its first state was ever gathered).
func (j *JobResult) FullStates() ([]*core.FullState, error) {
	out := make([]*core.FullState, len(j.Reports))
	for _, rep := range j.Reports {
		if rep.CellRank < 0 || rep.CellRank >= len(out) {
			return nil, fmt.Errorf("cluster: report cell rank %d out of range [0,%d)", rep.CellRank, len(out))
		}
		if len(rep.Full) == 0 {
			return nil, fmt.Errorf("cluster: cell %d report carries no full state", rep.CellRank)
		}
		f, err := core.UnmarshalFullState(rep.Full)
		if err != nil {
			return nil, fmt.Errorf("cluster: decoding cell %d full state: %w", rep.CellRank, err)
		}
		out[rep.CellRank] = f
	}
	for c, f := range out {
		if f == nil {
			return nil, fmt.Errorf("cluster: no report for cell %d", c)
		}
	}
	return out, nil
}
