//go:build race

package cluster

// raceEnabled widens chaos-test timeouts: under the race detector the
// in-process grid runs roughly an order of magnitude slower, and a round
// deadline tuned for native speed would evict healthy-but-slow slaves.
const raceEnabled = true
