package cluster

import "cellgan/internal/telemetry"

// Metrics are the master's runtime counters. Built over the shared
// telemetry registry; NewMetrics(nil) returns a fully usable no-op set
// (nil instruments are no-ops), so the master code threads metrics
// through unconditionally.
type Metrics struct {
	// Rounds counts completed synchronous exchange rounds (resilient
	// mode).
	Rounds *telemetry.Counter
	// StateUpdates counts parsed per-round state uploads from slaves.
	StateUpdates *telemetry.Counter
	// Evictions counts slaves removed for missing MaxStrikes rounds.
	Evictions *telemetry.Counter
	// Redispatches counts cells reassigned from an evicted slave to a
	// survivor.
	Redispatches *telemetry.Counter
	// SendRetries counts re-sent master messages (lost or refused sends).
	SendRetries *telemetry.Counter
	// Heartbeats counts status polls answered by slaves.
	Heartbeats *telemetry.Counter
	// LiveSlaves tracks the current number of live slaves.
	LiveSlaves *telemetry.Gauge
	// Joins counts slaves that joined a running job (async mode).
	Joins *telemetry.Counter
	// Rebalances counts cells moved to a joiner (async mode).
	Rebalances *telemetry.Counter
}

// NewMetrics registers the master metrics on reg; a nil registry yields
// a no-op set.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Rounds:       reg.Counter("cluster_rounds_total", "Completed synchronous exchange rounds."),
		StateUpdates: reg.Counter("cluster_state_updates_total", "State uploads merged into the master grid view."),
		Evictions:    reg.Counter("cluster_evictions_total", "Slaves evicted for missing consecutive rounds."),
		Redispatches: reg.Counter("cluster_redispatches_total", "Cells reassigned from evicted slaves to survivors."),
		SendRetries:  reg.Counter("cluster_send_retries_total", "Master messages re-sent after a failed attempt."),
		Heartbeats:   reg.Counter("cluster_heartbeats_total", "Status polls answered by slaves."),
		LiveSlaves:   reg.Gauge("cluster_live_slaves", "Slaves currently participating in the job."),
		Joins:        reg.Counter("cluster_joins_total", "Slaves that joined a running job mid-run."),
		Rebalances:   reg.Counter("cluster_rebalances_total", "Cells moved to a joiner during rebalancing."),
	}
}

// interrupted reports whether ch (possibly nil) has been closed.
func interrupted(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}
