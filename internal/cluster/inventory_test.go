package cluster

import (
	"testing"

	"cellgan/internal/config"
)

func TestDefaultInventoryModelsClusterUY(t *testing.T) {
	inv := DefaultInventory()
	if len(inv) != 30 {
		t.Fatalf("nodes %d want 30", len(inv))
	}
	for _, n := range inv {
		if n.Cores != 40 {
			t.Fatalf("node %s cores %d", n.Name, n.Cores)
		}
		if n.MemoryMB != 128*1024 {
			t.Fatalf("node %s memory %d", n.Name, n.MemoryMB)
		}
	}
}

func TestAllocateValidation(t *testing.T) {
	inv := DefaultInventory()
	if _, err := Allocate(inv, 0, 100); err == nil {
		t.Fatal("zero tasks accepted")
	}
	if _, err := Allocate(inv, 3, -1); err == nil {
		t.Fatal("negative memory accepted")
	}
	if _, err := Allocate(nil, 3, 100); err == nil {
		t.Fatal("empty inventory accepted")
	}
	if _, err := Allocate(Inventory{{Name: "bad", Cores: 0}}, 1, 0); err == nil {
		t.Fatal("invalid node accepted")
	}
}

func TestAllocateBalancesLoad(t *testing.T) {
	inv := Inventory{
		{Name: "a", Cores: 4, MemoryMB: 8192},
		{Name: "b", Cores: 4, MemoryMB: 8192},
	}
	ps, err := Allocate(inv, 6, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 6 {
		t.Fatalf("placements %d", len(ps))
	}
	sum := Summary(ps)
	if len(sum) != 2 || sum[0].Tasks != 3 || sum[1].Tasks != 3 {
		t.Fatalf("unbalanced placement %v", sum)
	}
	// Cores must be distinct per node.
	seen := map[string]map[int]bool{}
	for _, p := range ps {
		if seen[p.Node] == nil {
			seen[p.Node] = map[int]bool{}
		}
		if seen[p.Node][p.Core] {
			t.Fatalf("core %d on %s assigned twice", p.Core, p.Node)
		}
		seen[p.Node][p.Core] = true
	}
}

func TestAllocateRespectsCoreLimit(t *testing.T) {
	inv := Inventory{{Name: "only", Cores: 2, MemoryMB: 1 << 20}}
	if _, err := Allocate(inv, 3, 0); err == nil {
		t.Fatal("overcommitted cores accepted")
	}
}

func TestAllocateRespectsMemoryLimit(t *testing.T) {
	inv := Inventory{{Name: "small", Cores: 10, MemoryMB: 2048}}
	if _, err := Allocate(inv, 3, 1024); err == nil {
		t.Fatal("overcommitted memory accepted")
	}
	ps, err := Allocate(inv, 2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("placements %d", len(ps))
	}
}

func TestAllocateDeterministic(t *testing.T) {
	inv := DefaultInventory()
	a, err := Allocate(inv, 17, 1843)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Allocate(inv, 17, 1843)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTableIIResourceFigures(t *testing.T) {
	// Table II: 5/10/17 tasks for the three grids, each task on its own
	// core, memory growing with the grid.
	inv := DefaultInventory()
	for _, m := range []int{2, 3, 4} {
		cfg := config.Default().WithGrid(m, m)
		ps, err := Allocate(inv, cfg.NumTasks(), cfg.MemoryPerTaskMB)
		if err != nil {
			t.Fatal(err)
		}
		if len(ps) != cfg.NumTasks() {
			t.Fatalf("%d×%d: %d placements", m, m, len(ps))
		}
	}
}
