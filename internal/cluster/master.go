package cluster

import (
	"fmt"
	"sync"
	"time"

	"cellgan/internal/config"
	"cellgan/internal/core"
	"cellgan/internal/mpi"
	"cellgan/internal/profile"
)

// MasterOptions tunes the master process.
type MasterOptions struct {
	// Cfg is the experiment configuration broadcast to the slaves.
	Cfg config.Config
	// Inventory is the simulated cluster; nil uses DefaultInventory.
	Inventory Inventory
	// HeartbeatInterval is the period of the monitoring thread
	// ("Wait X seconds" in Fig 3); 0 defaults to 50 ms.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long the master waits for a slave's status
	// reply before declaring it dead; 0 defaults to 10 s.
	HeartbeatTimeout time.Duration
	// Logf, when non-nil, receives the master's event log lines as they
	// are produced.
	Logf func(format string, args ...interface{})

	// Resilient enables the failure-tolerant runtime: the per-iteration
	// neighbour exchange is routed through the master in synchronous
	// rounds, and a slave that misses MaxStrikes consecutive rounds is
	// evicted with its cells re-dispatched to survivors from their last
	// gathered state. Eviction is driven by round progress — which is
	// message-schedule-determined — rather than wall-clock heartbeats, so
	// chaos runs with a fixed (seed, schedule) are reproducible.
	Resilient bool
	// RoundTimeout is how long the master waits for the next state update
	// in a round before striking the laggards (resilient mode only);
	// 0 defaults to 1 s. Strikes are progress-gated: a slave is only
	// struck while at least one peer has already delivered the round, so
	// uniform slowness never evicts anyone.
	RoundTimeout time.Duration
	// MaxStrikes is how many consecutive missed rounds evict a slave
	// (resilient mode only); 0 defaults to 3.
	MaxStrikes int

	// Async enables the asynchronous cluster exchange: slaves push cell
	// snapshots directly to each other under a bounded-staleness window
	// (Cfg.AsyncStaleness) and the master only tracks inventory and
	// membership. Mutually exclusive with Resilient.
	Async bool
	// JoinSlots is how many extra communicator ranks beyond
	// Cfg.NumTasks() are connected reserves that may join mid-run
	// (async mode only).
	JoinSlots int

	// Interrupt, when non-nil, aborts the job once closed: the master
	// tells every slave to stop at its next iteration boundary and then
	// collects results normally, exactly as when Cfg.TimeLimit expires.
	Interrupt <-chan struct{}
	// Metrics, when non-nil, receives the master's runtime counters; nil
	// records nothing.
	Metrics *Metrics

	// Resume, when non-nil, seeds every cell from a prior run's full
	// states (one per cell, in rank order): the master dispatches each
	// state with its run task and tracks the recorded iterations from the
	// start. Lockstep modes require uniform iterations; async accepts the
	// mixed iterations its own snapshots record.
	Resume []*core.FullState
	// CheckpointEvery, with CheckpointSink, makes the master emit
	// periodic whole-job snapshots from its gathered inventory: a
	// consistent cut at every CheckpointEvery-th iteration in resilient
	// mode, a best-effort newest-wins snapshot each time the slowest cell
	// crosses a cadence in async mode. The plain mode holds no inventory
	// and ignores the cadence. Sink failures are logged and counted,
	// never fatal — losing a snapshot must not kill the training run.
	CheckpointEvery int
	CheckpointSink  func(iteration int, states []*core.FullState) error
}

// RunMaster executes the master role on rank 0 of comm (Fig 3, left). The
// communicator must have exactly Cfg.NumTasks() ranks — the master plus
// one slave per grid cell — plus JoinSlots connected reserves in async
// mode. Every rank must call SplitLocal first so the collective contexts
// exist on all processes.
func RunMaster(comm *mpi.Comm, opts MasterOptions) (*JobResult, error) {
	if comm.Rank() != 0 {
		return nil, fmt.Errorf("cluster: RunMaster must run on rank 0, got %d", comm.Rank())
	}
	if err := opts.Cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Async && opts.Resilient {
		return nil, fmt.Errorf("cluster: Async and Resilient modes are mutually exclusive")
	}
	if opts.JoinSlots < 0 {
		return nil, fmt.Errorf("cluster: negative JoinSlots %d", opts.JoinSlots)
	}
	want := opts.Cfg.NumTasks()
	if opts.Async {
		want += opts.JoinSlots
	}
	if comm.Size() != want {
		return nil, fmt.Errorf("cluster: config needs %d tasks, communicator has %d", want, comm.Size())
	}
	if opts.Inventory == nil {
		opts.Inventory = DefaultInventory()
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = 50 * time.Millisecond
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 10 * time.Second
	}
	if opts.RoundTimeout <= 0 {
		opts.RoundTimeout = time.Second
	}
	if opts.MaxStrikes <= 0 {
		opts.MaxStrikes = 3
	}
	if opts.Metrics == nil {
		opts.Metrics = NewMetrics(nil)
	}
	if err := validateResume(opts); err != nil {
		return nil, err
	}
	if opts.Async {
		return runMasterAsync(comm, opts)
	}
	if opts.Resilient {
		return runMasterResilient(comm, opts)
	}

	res := &JobResult{}
	started := time.Now()
	logf := func(format string, args ...interface{}) {
		line := fmt.Sprintf(format, args...)
		res.Log = append(res.Log, line)
		if opts.Logf != nil {
			opts.Logf("%s", line)
		}
	}
	nSlaves := comm.Size() - 1

	// (i) Gather information about the computing infrastructure: the
	// slaves report their node names.
	names := make([]string, nSlaves+1)
	names[0] = "master"
	for i := 0; i < nSlaves; i++ {
		m, err := comm.Recv(mpi.AnySource, tagNodeName)
		if err != nil {
			return nil, fmt.Errorf("cluster: gathering node names: %w", err)
		}
		names[m.Src] = string(m.Data)
	}
	logf("master: gathered %d slave node names", nSlaves)

	// (ii)+(iii) Decide placement, balancing load across nodes.
	placements, err := Allocate(opts.Inventory, comm.Size(), opts.Cfg.MemoryPerTaskMB)
	if err != nil {
		return nil, err
	}
	res.Placements = placements
	logf("master: placed %d tasks on %d nodes (%d MB total)",
		comm.Size(), len(Summary(placements)), opts.Cfg.MemoryMB())

	// (iv) Share the parameter configuration and start the slaves.
	for s := 1; s <= nSlaves; s++ {
		task := runTask{Cfg: opts.Cfg, CellRank: s - 1, Node: placements[s].Node, Core: placements[s].Core}
		if opts.Resume != nil {
			task.Full = opts.Resume[s-1].Marshal()
		}
		payload, err := task.marshal()
		if err != nil {
			return nil, err
		}
		if err := comm.Send(s, tagRunTask, payload); err != nil {
			return nil, fmt.Errorf("cluster: sending run task to slave %d: %w", s, err)
		}
	}
	logf("master: sent run task to %d slaves", nSlaves)

	// Heartbeat thread: periodically poll every slave's state, recording
	// transitions, until all report finished or the time limit passes.
	states := make([]SlaveState, nSlaves+1)
	var transMu sync.Mutex
	deadline := time.Time{}
	if opts.Cfg.TimeLimit > 0 {
		deadline = started.Add(opts.Cfg.TimeLimit)
	}
	aborted := false
	opts.Metrics.LiveSlaves.Set(float64(nSlaves))
	hbErr := make(chan error, 1)
	go func() {
		hbErr <- func() error {
			for {
				allFinished := true
				for s := 1; s <= nSlaves; s++ {
					if err := comm.Send(s, tagStatus, nil); err != nil {
						return err
					}
					m, err := comm.RecvTimeout(s, tagStatus, opts.HeartbeatTimeout)
					if err != nil {
						return fmt.Errorf("slave %d unresponsive: %w", s, err)
					}
					opts.Metrics.Heartbeats.Inc()
					st := SlaveState(m.Data[0])
					if st != states[s] {
						transMu.Lock()
						res.Transitions = append(res.Transitions, Transition{Slave: s, From: states[s], To: st, At: time.Now()})
						transMu.Unlock()
						logf("heartbeat: slave %d %s -> %s", s, states[s], st)
						states[s] = st
					}
					if st != StateFinished {
						allFinished = false
					}
				}
				if allFinished {
					return nil
				}
				if !aborted && (interrupted(opts.Interrupt) ||
					(!deadline.IsZero() && time.Now().After(deadline))) {
					aborted = true
					why := "time limit exceeded"
					if interrupted(opts.Interrupt) {
						why = "interrupted"
					}
					logf("heartbeat: %s, sending abort to all slaves", why)
					for s := 1; s <= nSlaves; s++ {
						if err := comm.Send(s, tagAbort, nil); err != nil {
							return err
						}
					}
				}
				time.Sleep(opts.HeartbeatInterval)
			}
		}()
	}()
	if err := <-hbErr; err != nil {
		return nil, fmt.Errorf("cluster: heartbeat thread: %w", err)
	}
	logf("master: all slaves finished, collecting results")

	// Gather final results from each slave and release them.
	prof := profile.New()
	res.Reports = make([]SlaveReport, nSlaves)
	for s := 1; s <= nSlaves; s++ {
		if err := comm.Send(s, tagCollect, nil); err != nil {
			return nil, err
		}
		m, err := comm.Recv(s, tagResult)
		if err != nil {
			return nil, err
		}
		rep, err := parseSlaveReport(m.Data)
		if err != nil {
			return nil, err
		}
		res.Reports[rep.CellRank] = rep
		if snap, err := profile.DecodeSnapshot(rep.Profile); err == nil {
			prof.Merge(snap)
		}
		if rep.Aborted {
			res.Aborted = true
		}
	}
	for s := 1; s <= nSlaves; s++ {
		if err := comm.Send(s, tagShutdown, nil); err != nil {
			return nil, err
		}
	}

	// Reduction phase: return the best mixture overall.
	best := 0
	for i, r := range res.Reports {
		if r.MixtureFitness < res.Reports[best].MixtureFitness {
			best = i
		}
	}
	res.BestCell = res.Reports[best].CellRank
	res.Profile = prof.Snapshot()
	res.Elapsed = time.Since(started)
	logf("master: best cell %d (mixture fitness %.4f), elapsed %s",
		res.BestCell, res.Reports[best].MixtureFitness, res.Elapsed.Round(time.Millisecond))
	return res, nil
}

// SplitLocal derives the LOCAL communicator of §III-D from the WORLD
// communicator: the sub-communicator of all slaves, used for the
// per-iteration allgather without involving the master. Every rank of
// comm must call it; the master (rank 0) receives nil.
func SplitLocal(comm *mpi.Comm) (*mpi.Comm, error) {
	color := 0
	if comm.Rank() == 0 {
		color = -1
	}
	return comm.Split(color, comm.Rank())
}
