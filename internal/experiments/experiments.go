// Package experiments regenerates every table and figure of the paper's
// evaluation section (§IV): the parameter settings (Table I), the resource
// allocation (Table II), the execution-time/speedup comparison (Table III),
// the routine profile (Table IV), the grid/neighbourhood illustration
// (Fig 1), the slave state machine (Fig 2), the master/slave flow trace
// (Fig 3) and the routine-time bar chart (Fig 4).
//
// Tables III and IV combine the calibrated performance model (the paper's
// testbed is unavailable; see internal/perfmodel) with real reduced-scale
// runs of the actual engine where that is feasible.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"cellgan/internal/checkpoint"
	"cellgan/internal/clientserver"
	"cellgan/internal/cluster"
	"cellgan/internal/config"
	"cellgan/internal/core"
	"cellgan/internal/dataset"
	"cellgan/internal/grid"
	"cellgan/internal/metrics"
	"cellgan/internal/perfmodel"
	"cellgan/internal/profile"
	"cellgan/internal/report"
	"cellgan/internal/serve"
	"cellgan/internal/stats"
	"cellgan/internal/tensor"
)

// TableI renders the parameter settings table from a configuration.
func TableI(cfg config.Config) string {
	t := report.NewTable("Table I — Parameters settings of the trained GANs", "parameter", "value")
	for _, row := range cfg.TableI() {
		t.AddRow(row[0], row[1])
	}
	return t.String()
}

// TableII renders the per-grid resource allocation, validated against the
// simulated cluster inventory.
func TableII(sides []int) (string, error) {
	t := report.NewTable("Table II — Resources used on each execution",
		"grid size", "# cores", "memory (MB)", "nodes used")
	inv := cluster.DefaultInventory()
	for _, m := range sides {
		cfg := config.Default().WithGrid(m, m)
		ps, err := cluster.Allocate(inv, cfg.NumTasks(), cfg.MemoryPerTaskMB)
		if err != nil {
			return "", err
		}
		t.AddRow(
			fmt.Sprintf("%d×%d", m, m),
			fmt.Sprint(cfg.NumTasks()),
			fmt.Sprint(cfg.MemoryMB()),
			fmt.Sprint(len(cluster.Summary(ps))),
		)
	}
	return t.String(), nil
}

// TableIII renders the modelled execution times and speedups at paper
// scale (200 iterations, full dataset).
func TableIII(sides []int) (string, error) {
	rows, err := perfmodel.CalibratedScaling().TableIII(sides)
	if err != nil {
		return "", err
	}
	t := report.NewTable("Table III — Execution times of GAN training (calibrated model, minutes)",
		"grid size", "single core (min)", "distributed", "speedup")
	for _, r := range rows {
		t.AddRow(r.Grid,
			fmt.Sprintf("%.1f", r.SingleCore),
			fmt.Sprintf("%.2f±%.2f", r.Distributed, r.DistributedStd),
			fmt.Sprintf("%.2f", r.Speedup),
		)
	}
	return t.String(), nil
}

// MeasuredRow is one reduced-scale measurement of the real engine.
type MeasuredRow struct {
	Grid       string
	Sequential time.Duration
	Parallel   time.Duration
	Speedup    float64
}

// MeasureScaling runs the real engine sequentially and in parallel at
// reduced scale for each grid side and reports wall-clock times. On a
// single-core host the parallel numbers demonstrate correctness rather
// than speedup; with GOMAXPROCS ≥ cells they show real scaling.
func MeasureScaling(base config.Config, sides []int) ([]MeasuredRow, error) {
	out := make([]MeasuredRow, 0, len(sides))
	for _, m := range sides {
		cfg := base.WithGrid(m, m)
		seq, err := core.RunSequential(cfg, core.RunOptions{})
		if err != nil {
			return nil, err
		}
		par, err := core.RunParallel(cfg, core.RunOptions{})
		if err != nil {
			return nil, err
		}
		out = append(out, MeasuredRow{
			Grid:       fmt.Sprintf("%d×%d", m, m),
			Sequential: seq.Elapsed,
			Parallel:   par.Elapsed,
			Speedup:    float64(seq.Elapsed) / float64(par.Elapsed),
		})
	}
	return out, nil
}

// MeasuredScalingTable renders MeasureScaling results.
func MeasuredScalingTable(base config.Config, sides []int) (string, error) {
	rows, err := MeasureScaling(base, sides)
	if err != nil {
		return "", err
	}
	t := report.NewTable("Table III (companion) — Measured reduced-scale runs of the real engine",
		"grid size", "sequential", "parallel", "speedup")
	for _, r := range rows {
		t.AddRow(r.Grid, r.Sequential.Round(time.Millisecond).String(),
			r.Parallel.Round(time.Millisecond).String(), fmt.Sprintf("%.2f", r.Speedup))
	}
	return t.String(), nil
}

// TableIV renders the modelled routine profile for the 4×4 grid.
func TableIV() (string, error) {
	rows, err := perfmodel.TableIV(perfmodel.CalibratedRoutines(), 16)
	if err != nil {
		return "", err
	}
	t := report.NewTable("Table IV — Profiling of execution times for the most consuming routines (4×4, minutes)",
		"routine", "single core", "distributed", "acceleration", "speedup")
	for _, r := range rows {
		t.AddRow(r.Routine,
			fmt.Sprintf("%.1f", r.SingleCore),
			fmt.Sprintf("%.1f", r.Distributed),
			fmt.Sprintf("%.1f%%", r.Acceleration),
			fmt.Sprintf("%.2f", r.Speedup),
		)
	}
	return t.String(), nil
}

// MeasuredProfileTable runs the real engine at reduced scale in both modes
// and reports the measured per-routine times — the empirical companion of
// Table IV.
func MeasuredProfileTable(cfg config.Config) (string, error) {
	seqProf := profile.New()
	if _, err := core.RunSequential(cfg, core.RunOptions{Prof: seqProf}); err != nil {
		return "", err
	}
	parProf := profile.New()
	if _, err := core.RunParallel(cfg, core.RunOptions{Prof: parProf}); err != nil {
		return "", err
	}
	t := report.NewTable("Table IV (companion) — Measured routine times at reduced scale",
		"routine", "sequential", "parallel")
	for _, r := range []string{profile.RoutineGather, profile.RoutineTrain,
		profile.RoutineUpdateGenomes, profile.RoutineMutate} {
		t.AddRow(r, seqProf.Get(r).Total.Round(time.Microsecond).String(),
			parProf.Get(r).Total.Round(time.Microsecond).String())
	}
	return t.String(), nil
}

// RepeatedScalingTable runs the paper's repetition methodology at reduced
// scale: `reps` independent executions per (grid, mode), reported as
// avg±std with the 95% confidence interval — the exact presentation of
// Table III's distributed column.
func RepeatedScalingTable(base config.Config, sides []int, reps int) (string, error) {
	t := report.NewTable(
		fmt.Sprintf("Repeated measurements (%d runs each, reduced scale, ms)", reps),
		"grid size", "sequential avg±std", "parallel avg±std", "speedup±std")
	for _, m := range sides {
		cfg := base.WithGrid(m, m)
		seq, err := stats.Repeat(reps, time.Millisecond, func() error {
			_, err := core.RunSequential(cfg, core.RunOptions{})
			return err
		})
		if err != nil {
			return "", err
		}
		par, err := stats.Repeat(reps, time.Millisecond, func() error {
			_, err := core.RunParallel(cfg, core.RunOptions{})
			return err
		})
		if err != nil {
			return "", err
		}
		sp, spStd, err := stats.Speedup(seq, par)
		if err != nil {
			return "", err
		}
		t.AddRow(fmt.Sprintf("%d×%d", m, m), seq.String(), par.String(),
			fmt.Sprintf("%.2f±%.2f", sp, spStd))
	}
	return t.String(), nil
}

// ArchitectureTable compares one reduced-scale run under every execution
// architecture: the sequential baseline, the paper's synchronous
// MPI-style exchange, the asynchronous variant, and the pre-MPI HTTP
// client-server model §III-B replaces.
func ArchitectureTable(cfg config.Config) (string, error) {
	t := report.NewTable("Execution architectures at reduced scale",
		"architecture", "wall clock", "best mixture fitness")
	for _, arch := range []struct {
		name string
		run  func() (*core.Result, error)
	}{
		{"sequential (1 core)", func() (*core.Result, error) { return core.RunSequential(cfg, core.RunOptions{}) }},
		{"MPI-style synchronous", func() (*core.Result, error) { return core.RunParallel(cfg, core.RunOptions{}) }},
		{"MPI-style asynchronous", func() (*core.Result, error) { return core.RunAsync(cfg, core.RunOptions{}) }},
		{"HTTP client-server (pre-MPI)", func() (*core.Result, error) { return clientserver.Run(cfg, core.RunOptions{}) }},
	} {
		res, err := arch.run()
		if err != nil {
			return "", fmt.Errorf("%s: %w", arch.name, err)
		}
		t.AddRow(arch.name, res.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.4f", res.Best().MixtureFitness))
	}
	return t.String(), nil
}

// QualityTable trains the grid at the given configuration and evaluates
// the returned generator mixture with the classifier-backed metrics,
// bracketed by the real-data and noise baselines. It is the
// generative-quality experiment the paper defers to its references.
func QualityTable(cfg config.Config, sampleN int) (string, error) {
	rng := tensor.NewRNG(cfg.Seed + 999)
	cls, err := metrics.TrainClassifier(dataset.Train(cfg.Seed), metrics.DefaultClassifierOptions(), rng.Split())
	if err != nil {
		return "", err
	}
	eval := func(batch *tensor.Mat) (metrics.Report, error) {
		return metrics.Evaluate(cls, batch, dataset.Test(cfg.Seed), sampleN)
	}

	t := report.NewTable("Generator quality (classifier-backed metrics)",
		"source", "inception score", "Fréchet (diag)", "modes", "TVD")
	add := func(name string, rep metrics.Report) {
		t.AddRow(name,
			fmt.Sprintf("%.3f", rep.InceptionScore),
			fmt.Sprintf("%.2f", rep.Frechet),
			fmt.Sprintf("%d/%d", rep.ModeCoverage, dataset.NumClasses),
			fmt.Sprintf("%.3f", rep.TVD))
	}

	// Real data presented as "generated": the upper bound.
	idx := make([]int, sampleN)
	for i := range idx {
		idx[i] = sampleN + i
	}
	realBatch, _ := dataset.Test(cfg.Seed).Batch(idx)
	realRep, err := eval(realBatch)
	if err != nil {
		return "", err
	}
	add("real data", realRep)

	// The trained coevolutionary mixture.
	res, err := core.RunParallel(cfg, core.RunOptions{})
	if err != nil {
		return "", err
	}
	mix, err := res.MixtureFor(res.BestRank)
	if err != nil {
		return "", err
	}
	genRep, err := eval(mix.Sample(sampleN, cfg.InputNeurons, rng.Split()))
	if err != nil {
		return "", err
	}
	add(fmt.Sprintf("trained mixture (%d iters)", cfg.Iterations), genRep)

	// Uniform noise: the lower bound.
	noise := tensor.New(sampleN, dataset.Pixels)
	tensor.UniformFill(noise, -1, 1, rng.Split())
	noiseRep, err := eval(noise)
	if err != nil {
		return "", err
	}
	add("uniform noise", noiseRep)
	return t.String(), nil
}

// DCGANTable switches the grid to the CNN genome (DCGAN-style conv
// stacks, the heavier workload the Lipizzaner line actually scales) and
// drives it through the full train→exchange→serve stack: parallel
// cellular training with neighbourhood exchange, export of the best
// cell's generator mixture as a deployable artifact, and batched sampling
// of that artifact through the serving engine. The conv layers run on the
// im2col workspace path (DESIGN §11); nn's parity tests pin it
// bit-identical to the direct loops.
func DCGANTable(cfg config.Config, sampleN int) (string, error) {
	cfg.NetworkType = "CNN"
	if err := cfg.Validate(); err != nil {
		return "", err
	}
	if sampleN <= 0 {
		sampleN = 64
	}

	res, err := core.RunParallel(cfg, core.RunOptions{})
	if err != nil {
		return "", err
	}
	art, err := checkpoint.ExportMixture(res, res.BestRank)
	if err != nil {
		return "", err
	}
	reg := serve.NewRegistry(serve.EngineConfig{}, nil)
	defer reg.Close()
	if err := reg.Load("dcgan", art); err != nil {
		return "", err
	}
	eng, err := reg.Engine("dcgan")
	if err != nil {
		return "", err
	}
	served, err := eng.Generate(context.Background(), sampleN)
	if err != nil {
		return "", err
	}
	if served.Rows != sampleN || served.Cols != cfg.OutputNeurons {
		return "", fmt.Errorf("experiments: served batch %d×%d, want %d×%d",
			served.Rows, served.Cols, sampleN, cfg.OutputNeurons)
	}

	t := report.NewTable("DCGAN grid run — train → exchange → serve", "stage", "result")
	t.AddRow("genome", fmt.Sprintf("CNN (DCGAN conv stacks, latent %d → 28×28)", cfg.InputNeurons))
	t.AddRow("grid", fmt.Sprintf("%d×%d, %d iterations × %d batches of %d",
		cfg.GridRows, cfg.GridCols, cfg.Iterations, cfg.BatchesPerIteration, cfg.BatchSize))
	t.AddRow("train+exchange wall clock", res.Elapsed.Round(time.Millisecond).String())
	t.AddRow("best cell", fmt.Sprintf("rank %d, mixture fitness %.4f", res.BestRank, res.Best().MixtureFitness))
	t.AddRow("exported mixture", fmt.Sprintf("%d generators", len(art.Ranks)))
	t.AddRow("served batch", fmt.Sprintf("%d samples × %d pixels, range [%.2f, %.2f]",
		served.Rows, served.Cols, served.Min(), served.Max()))
	return t.String(), nil
}

// Fig1 renders the toroidal grid with two overlapping neighbourhoods, as
// in the paper's Fig 1 (N(1,3) wraps around the torus; N(1,1) is
// interior).
func Fig1() string {
	g := grid.MustNew(4, 4)
	var b strings.Builder
	b.WriteString("Fig 1 — 4×4 toroidal grid with overlapping Moore-5 neighbourhoods\n\n")
	b.WriteString(g.Render(g.Rank(1, 1)))
	b.WriteByte('\n')
	b.WriteString(g.Render(g.Rank(1, 3)))
	b.WriteString("\nOverlap: cells in both neighbourhoods relay updates between them.\n")
	return b.String()
}

// fig2Diagram is the static state machine of Fig 2.
const fig2Diagram = `Fig 2 — States and transitions of slave processes

          run task message              last training iteration
 [inactive] ------------> [processing] ------------------------> [finished]
`

// Fig2 renders the slave state machine together with an observed
// transition trace from a real (tiny) master/slave job.
func Fig2(cfg config.Config) (string, error) {
	res, err := cluster.RunJob(cluster.MasterOptions{Cfg: cfg, HeartbeatInterval: time.Millisecond})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(fig2Diagram)
	b.WriteString("\nObserved transitions (heartbeat monitoring of a real job):\n")
	for _, tr := range res.Transitions {
		fmt.Fprintf(&b, "  slave %d: %s -> %s\n", tr.Slave, tr.From, tr.To)
	}
	return b.String(), nil
}

// Fig3 renders the master/slave processing-and-communication flow as the
// annotated event log of a real job — the trace equivalent of the paper's
// flow diagram.
func Fig3(cfg config.Config) (string, error) {
	res, err := cluster.RunJob(cluster.MasterOptions{Cfg: cfg, HeartbeatInterval: time.Millisecond})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Fig 3 — Flow between the master process and slave processes (event log)\n\n")
	for _, line := range res.Log {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	fmt.Fprintf(&b, "\n%d slaves, %d placements, best cell %d, elapsed %s\n",
		len(res.Reports), len(res.Placements), res.BestCell, res.Elapsed.Round(time.Millisecond))
	return b.String(), nil
}

// Fig4 renders the single-node vs parallel routine-time comparison as a
// bar chart from the calibrated model.
func Fig4() (string, error) {
	rows, err := perfmodel.TableIV(perfmodel.CalibratedRoutines(), 16)
	if err != nil {
		return "", err
	}
	ch := report.NewBarChart("Fig 4 — Execution time comparison for the main routines (4×4)",
		" min", "single core", "distributed")
	for _, r := range rows {
		if r.Routine == "overall" {
			continue
		}
		if err := ch.Add(r.Routine, r.SingleCore, r.Distributed); err != nil {
			return "", err
		}
	}
	return ch.String(), nil
}

// TinyJobConfig is the reduced configuration used when an experiment needs
// to run the real engine quickly (figures 2 and 3, companion tables).
func TinyJobConfig() config.Config {
	return config.Default().Scaled(2, 8, 100)
}

// DCGANJobConfig is TinyJobConfig on the CNN genome: a reduced-scale
// DCGAN grid that still trains through the full conv workspace path.
func DCGANJobConfig() config.Config {
	cfg := TinyJobConfig()
	cfg.NetworkType = "CNN"
	cfg.BatchSize = 4
	return cfg
}

// All regenerates every artefact in paper order.
func All() (string, error) {
	var b strings.Builder
	b.WriteString(TableI(config.Default()))
	b.WriteByte('\n')
	for _, gen := range []func() (string, error){
		func() (string, error) { return TableII([]int{2, 3, 4}) },
		func() (string, error) { return TableIII([]int{2, 3, 4}) },
		TableIV,
		func() (string, error) { return Fig1(), nil },
		func() (string, error) { return Fig2(TinyJobConfig()) },
		func() (string, error) { return Fig3(TinyJobConfig()) },
		Fig4,
	} {
		s, err := gen()
		if err != nil {
			return "", err
		}
		b.WriteString(s)
		b.WriteByte('\n')
	}
	return b.String(), nil
}
