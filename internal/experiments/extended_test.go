package experiments

import (
	"strings"
	"testing"
)

func TestRepeatedScalingTable(t *testing.T) {
	out, err := RepeatedScalingTable(TinyJobConfig(), []int{2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2×2", "±", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("repeated table missing %q:\n%s", want, out)
		}
	}
}

func TestQualityTable(t *testing.T) {
	cfg := TinyJobConfig()
	cfg.Iterations = 1
	out, err := QualityTable(cfg, 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"real data", "trained mixture", "uniform noise", "inception"} {
		if !strings.Contains(out, want) {
			t.Fatalf("quality table missing %q:\n%s", want, out)
		}
	}
}

func TestArchitectureTable(t *testing.T) {
	cfg := TinyJobConfig()
	cfg.Iterations = 1
	out, err := ArchitectureTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sequential", "synchronous", "asynchronous", "HTTP client-server"} {
		if !strings.Contains(out, want) {
			t.Fatalf("architecture table missing %q:\n%s", want, out)
		}
	}
}

// TestDCGANTable runs the reduced-scale CNN grid through training,
// mixture export and the serving engine, end to end.
func TestDCGANTable(t *testing.T) {
	cfg := DCGANJobConfig()
	cfg.Iterations = 1
	out, err := DCGANTable(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CNN (DCGAN", "train+exchange", "best cell", "served batch", "8 samples × 784 pixels"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DCGAN table missing %q:\n%s", want, out)
		}
	}
}
