package experiments

import (
	"strings"
	"testing"
)

func TestRepeatedScalingTable(t *testing.T) {
	out, err := RepeatedScalingTable(TinyJobConfig(), []int{2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2×2", "±", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("repeated table missing %q:\n%s", want, out)
		}
	}
}

func TestQualityTable(t *testing.T) {
	cfg := TinyJobConfig()
	cfg.Iterations = 1
	out, err := QualityTable(cfg, 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"real data", "trained mixture", "uniform noise", "inception"} {
		if !strings.Contains(out, want) {
			t.Fatalf("quality table missing %q:\n%s", want, out)
		}
	}
}

func TestArchitectureTable(t *testing.T) {
	cfg := TinyJobConfig()
	cfg.Iterations = 1
	out, err := ArchitectureTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sequential", "synchronous", "asynchronous", "HTTP client-server"} {
		if !strings.Contains(out, want) {
			t.Fatalf("architecture table missing %q:\n%s", want, out)
		}
	}
}
