package experiments

import (
	"strings"
	"testing"

	"cellgan/internal/config"
)

func TestTableIContainsPaperSettings(t *testing.T) {
	out := TableI(config.Default())
	for _, want := range []string{"Table I", "Input neurons", "64", "tanh", "0.0002", "Batch size", "100"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIMatchesPaperTaskCounts(t *testing.T) {
	out, err := TableII([]int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2×2", "3×3", "4×4", "5", "10", "17"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table II missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIIShowsSpeedups(t *testing.T) {
	out, err := TableIII([]int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Model speedups close to the paper's 8.53 / 13.65 / 15.17.
	for _, want := range []string{"8.5", "13.1", "15.1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table III missing speedup %q:\n%s", want, out)
		}
	}
}

func TestTableIVShowsRoutines(t *testing.T) {
	out, err := TableIV()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gather", "train", "update genomes", "mutate", "overall", "1.00", "6.05", "11.87"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table IV missing %q:\n%s", want, out)
		}
	}
}

func TestFig1ShowsOverlappingNeighborhoods(t *testing.T) {
	out := Fig1()
	if strings.Count(out, " C ") != 2 {
		t.Fatalf("want two centers:\n%s", out)
	}
	if strings.Count(out, " N ") != 8 {
		t.Fatalf("want 8 neighbours total:\n%s", out)
	}
}

func TestFig2TraceReachesFinished(t *testing.T) {
	out, err := Fig2(TinyJobConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[inactive]") || !strings.Contains(out, "[processing]") || !strings.Contains(out, "[finished]") {
		t.Fatalf("static diagram incomplete:\n%s", out)
	}
	if !strings.Contains(out, "-> finished") {
		t.Fatalf("no observed finished transition:\n%s", out)
	}
}

func TestFig3LogCoversFlow(t *testing.T) {
	out, err := Fig3(TinyJobConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gathered", "placed", "run task", "collecting results", "best cell"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig 3 log missing %q:\n%s", want, out)
		}
	}
}

func TestFig4RendersBars(t *testing.T) {
	out, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"train", "gather", "#", "min"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig 4 missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "overall") {
		t.Fatal("Fig 4 should not chart the overall row")
	}
}

func TestMeasureScalingRunsBothModes(t *testing.T) {
	rows, err := MeasureScaling(TinyJobConfig(), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Grid != "2×2" {
		t.Fatalf("rows %+v", rows)
	}
	if rows[0].Sequential <= 0 || rows[0].Parallel <= 0 || rows[0].Speedup <= 0 {
		t.Fatalf("invalid measurements %+v", rows[0])
	}
}

func TestMeasuredTablesRender(t *testing.T) {
	out, err := MeasuredScalingTable(TinyJobConfig(), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2×2") {
		t.Fatalf("measured scaling:\n%s", out)
	}
	out, err = MeasuredProfileTable(TinyJobConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gather", "train", "update genomes", "mutate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("measured profile missing %q:\n%s", want, out)
		}
	}
}

func TestAllProducesEveryArtefact(t *testing.T) {
	out, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table I", "Table II", "Table III", "Table IV", "Fig 1", "Fig 2", "Fig 3", "Fig 4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("All() missing %q", want)
		}
	}
}
