// Package grid implements the toroidal cellular topology of the
// Lipizzaner/Mustangs training scheme: a Rows×Cols wrap-around grid in
// which every cell hosts one GAN (the "center") and trains against the
// sub-population formed by its neighbourhood.
//
// Following the paper's new `grid` class, the topology is dynamic: the
// neighbourhood pattern and even the grid dimensions can be changed while
// training runs, enabling experiments with different communication
// patterns. All methods are safe for concurrent use.
package grid

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Offset is a relative (row, col) displacement defining one member of a
// neighbourhood pattern.
type Offset struct {
	DRow, DCol int
}

// Predefined neighbourhood patterns. Moore5 is the paper's five-cell
// neighbourhood: the cell itself plus West, North, East and South (Fig 1).
var (
	Moore5 = []Offset{{0, 0}, {-1, 0}, {0, -1}, {0, 1}, {1, 0}}
	// Moore9 is the full 3×3 Moore neighbourhood including diagonals.
	Moore9 = []Offset{
		{-1, -1}, {-1, 0}, {-1, 1},
		{0, -1}, {0, 0}, {0, 1},
		{1, -1}, {1, 0}, {1, 1},
	}
	// Ring4 excludes the center: only the four cardinal neighbours.
	Ring4 = []Offset{{-1, 0}, {0, -1}, {0, 1}, {1, 0}}
)

// Grid is a toroidal cellular topology with a mutable neighbourhood
// pattern. Cell ranks are row-major: rank = row*Cols + col.
type Grid struct {
	mu      sync.RWMutex
	rows    int
	cols    int
	pattern []Offset
}

// New returns a rows×cols toroidal grid with the Moore5 pattern.
func New(rows, cols int) (*Grid, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("grid: dimensions must be positive, got %d×%d", rows, cols)
	}
	g := &Grid{rows: rows, cols: cols}
	g.pattern = append(g.pattern, Moore5...)
	return g, nil
}

// MustNew is New that panics on error, for tests and fixed-size callers.
func MustNew(rows, cols int) *Grid {
	g, err := New(rows, cols)
	if err != nil {
		panic(err)
	}
	return g
}

// Rows returns the current number of grid rows.
func (g *Grid) Rows() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.rows
}

// Cols returns the current number of grid columns.
func (g *Grid) Cols() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.cols
}

// Size returns the number of cells.
func (g *Grid) Size() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.rows * g.cols
}

// Pattern returns a copy of the current neighbourhood pattern.
func (g *Grid) Pattern() []Offset {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Offset, len(g.pattern))
	copy(out, g.pattern)
	return out
}

// SetPattern replaces the neighbourhood pattern, enabling the dynamic
// neighbourhood experiments the paper's grid class was designed for.
func (g *Grid) SetPattern(p []Offset) error {
	if len(p) == 0 {
		return fmt.Errorf("grid: empty neighbourhood pattern")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.pattern = append(g.pattern[:0:0], p...)
	return nil
}

// Resize changes the grid dimensions. Existing ranks are reinterpreted in
// the new geometry; callers coordinate the corresponding population moves.
func (g *Grid) Resize(rows, cols int) error {
	if rows <= 0 || cols <= 0 {
		return fmt.Errorf("grid: dimensions must be positive, got %d×%d", rows, cols)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.rows, g.cols = rows, cols
	return nil
}

// wrap reduces v modulo n into [0, n).
func wrap(v, n int) int {
	v %= n
	if v < 0 {
		v += n
	}
	return v
}

// Rank returns the row-major rank of the (possibly out-of-range) toroidal
// coordinate (row, col).
func (g *Grid) Rank(row, col int) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return wrap(row, g.rows)*g.cols + wrap(col, g.cols)
}

// Coord returns the (row, col) coordinate of rank.
func (g *Grid) Coord(rank int) (row, col int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if rank < 0 || rank >= g.rows*g.cols {
		panic(fmt.Sprintf("grid: rank %d out of range [0,%d)", rank, g.rows*g.cols))
	}
	return rank / g.cols, rank % g.cols
}

// Neighborhood returns the sorted, de-duplicated ranks of the cells in
// rank's neighbourhood under the current pattern. On small grids several
// offsets may wrap onto the same cell; duplicates are removed, so the
// effective sub-population size s may be smaller than the pattern size
// (e.g. s=5 patterns give s=4 distinct cells on a 2×2 grid).
func (g *Grid) Neighborhood(rank int) []int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if rank < 0 || rank >= g.rows*g.cols {
		panic(fmt.Sprintf("grid: rank %d out of range [0,%d)", rank, g.rows*g.cols))
	}
	row, col := rank/g.cols, rank%g.cols
	seen := make(map[int]struct{}, len(g.pattern))
	out := make([]int, 0, len(g.pattern))
	for _, off := range g.pattern {
		r := wrap(row+off.DRow, g.rows)*g.cols + wrap(col+off.DCol, g.cols)
		if _, dup := seen[r]; !dup {
			seen[r] = struct{}{}
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out
}

// Influence returns the sorted ranks of cells whose neighbourhoods contain
// rank — i.e. the cells that receive rank's center updates through the
// overlapping-neighbourhood communication of §II-B. For symmetric patterns
// this equals Neighborhood(rank).
func (g *Grid) Influence(rank int) []int {
	g.mu.RLock()
	pattern := append([]Offset(nil), g.pattern...)
	rows, cols := g.rows, g.cols
	g.mu.RUnlock()
	if rank < 0 || rank >= rows*cols {
		panic(fmt.Sprintf("grid: rank %d out of range [0,%d)", rank, rows*cols))
	}
	row, col := rank/cols, rank%cols
	seen := make(map[int]struct{})
	var out []int
	for _, off := range pattern {
		// Cell c sees rank iff c + off == rank, i.e. c = rank - off.
		r := wrap(row-off.DRow, rows)*cols + wrap(col-off.DCol, cols)
		if _, dup := seen[r]; !dup {
			seen[r] = struct{}{}
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out
}

// SubPopulationSize returns the number of distinct cells in rank's
// neighbourhood (the s of §II-B).
func (g *Grid) SubPopulationSize(rank int) int {
	return len(g.Neighborhood(rank))
}

// Render draws the grid as ASCII art, marking the neighbourhood of the
// given rank: C for the center, N for neighbours, · elsewhere. It
// reproduces the structure of the paper's Fig 1.
func (g *Grid) Render(rank int) string {
	nb := g.Neighborhood(rank)
	inNb := make(map[int]bool, len(nb))
	for _, r := range nb {
		inNb[r] = true
	}
	g.mu.RLock()
	rows, cols := g.rows, g.cols
	g.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "%d×%d toroidal grid, neighbourhood of cell N(%d,%d):\n", rows, cols, rank/cols, rank%cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			cell := r*cols + c
			switch {
			case cell == rank:
				b.WriteString(" C ")
			case inNb[cell]:
				b.WriteString(" N ")
			default:
				b.WriteString(" · ")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
