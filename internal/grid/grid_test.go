package grid

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3); err == nil {
		t.Fatal("0 rows accepted")
	}
	if _, err := New(3, -1); err == nil {
		t.Fatal("negative cols accepted")
	}
	g, err := New(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows() != 3 || g.Cols() != 4 || g.Size() != 12 {
		t.Fatalf("geometry %d×%d size %d", g.Rows(), g.Cols(), g.Size())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustNew(0, 0)
}

func TestRankCoordRoundTrip(t *testing.T) {
	g := MustNew(3, 5)
	for rank := 0; rank < g.Size(); rank++ {
		r, c := g.Coord(rank)
		if got := g.Rank(r, c); got != rank {
			t.Fatalf("round trip rank %d -> (%d,%d) -> %d", rank, r, c, got)
		}
	}
}

func TestRankWraps(t *testing.T) {
	g := MustNew(3, 3)
	if g.Rank(-1, 0) != g.Rank(2, 0) {
		t.Fatal("row wrap up")
	}
	if g.Rank(3, 1) != g.Rank(0, 1) {
		t.Fatal("row wrap down")
	}
	if g.Rank(1, -1) != g.Rank(1, 2) {
		t.Fatal("col wrap left")
	}
	if g.Rank(1, 5) != g.Rank(1, 2) {
		t.Fatal("col wrap right (multiple)")
	}
	if g.Rank(-4, -4) != g.Rank(2, 2) {
		t.Fatal("deep negative wrap")
	}
}

func TestCoordOutOfRangePanics(t *testing.T) {
	g := MustNew(2, 2)
	for _, bad := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Coord(%d) did not panic", bad)
				}
			}()
			g.Coord(bad)
		}()
	}
}

func TestMoore5NeighborhoodOn4x4(t *testing.T) {
	// Fig 1 of the paper: 4×4 grid, neighbourhood of cell (1,1) is the
	// center plus N, S, E, W.
	g := MustNew(4, 4)
	center := g.Rank(1, 1)
	nb := g.Neighborhood(center)
	want := []int{
		g.Rank(0, 1), // North
		g.Rank(1, 0), // West
		center,
		g.Rank(1, 2), // East
		g.Rank(2, 1), // South
	}
	wantSorted := append([]int(nil), want...)
	sortInts(wantSorted)
	if !reflect.DeepEqual(nb, wantSorted) {
		t.Fatalf("neighbourhood %v want %v", nb, wantSorted)
	}
	if g.SubPopulationSize(center) != 5 {
		t.Fatalf("s = %d", g.SubPopulationSize(center))
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

func TestNeighborhoodWrapsToroidally(t *testing.T) {
	g := MustNew(4, 4)
	corner := g.Rank(0, 0)
	nb := g.Neighborhood(corner)
	want := []int{g.Rank(0, 0), g.Rank(3, 0), g.Rank(1, 0), g.Rank(0, 3), g.Rank(0, 1)}
	sortInts(want)
	if !reflect.DeepEqual(nb, want) {
		t.Fatalf("corner neighbourhood %v want %v", nb, want)
	}
}

func TestNeighborhoodDedupOn2x2(t *testing.T) {
	// On a 2×2 torus, North and South of a cell coincide, as do East and
	// West, so the Moore5 pattern yields only 4 distinct cells... wait:
	// North of (0,0) is (1,0) and South is (1,0) as well; East and West
	// are both (0,1). Distinct cells: self, (1,0), (0,1) = 3.
	g := MustNew(2, 2)
	nb := g.Neighborhood(0)
	if len(nb) != 3 {
		t.Fatalf("2×2 sub-population size %d want 3 (%v)", len(nb), nb)
	}
}

func TestNeighborhoodOn1x1(t *testing.T) {
	g := MustNew(1, 1)
	nb := g.Neighborhood(0)
	if !reflect.DeepEqual(nb, []int{0}) {
		t.Fatalf("1×1 neighbourhood %v", nb)
	}
}

func TestInfluenceSymmetricEqualsNeighborhood(t *testing.T) {
	g := MustNew(4, 4)
	for rank := 0; rank < g.Size(); rank++ {
		if !reflect.DeepEqual(g.Neighborhood(rank), g.Influence(rank)) {
			t.Fatalf("rank %d: symmetric pattern should have Influence == Neighborhood", rank)
		}
	}
}

func TestInfluenceAsymmetricPattern(t *testing.T) {
	g := MustNew(3, 3)
	// Only the Eastern neighbour: cell c's neighbourhood is {c+E}.
	if err := g.SetPattern([]Offset{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	// Neighborhood(4) = {rank(1,2)=5}; Influence(4) = cells that see 4 =
	// {rank(1,0)=3}.
	if nb := g.Neighborhood(4); !reflect.DeepEqual(nb, []int{5}) {
		t.Fatalf("neighbourhood %v", nb)
	}
	if in := g.Influence(4); !reflect.DeepEqual(in, []int{3}) {
		t.Fatalf("influence %v", in)
	}
}

func TestMutualityProperty(t *testing.T) {
	// For every pattern, b ∈ Neighborhood(a) ⟺ a ∈ Influence(b).
	f := func(rowsRaw, colsRaw uint8, patternPick uint8) bool {
		rows := int(rowsRaw%5) + 1
		cols := int(colsRaw%5) + 1
		g := MustNew(rows, cols)
		patterns := [][]Offset{Moore5, Moore9, Ring4, {{0, 2}, {1, 1}}}
		if err := g.SetPattern(patterns[int(patternPick)%len(patterns)]); err != nil {
			return false
		}
		for a := 0; a < g.Size(); a++ {
			for _, b := range g.Neighborhood(a) {
				found := false
				for _, x := range g.Influence(b) {
					if x == a {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSetPatternValidationAndCopy(t *testing.T) {
	g := MustNew(3, 3)
	if err := g.SetPattern(nil); err == nil {
		t.Fatal("empty pattern accepted")
	}
	p := []Offset{{0, 0}, {1, 1}}
	if err := g.SetPattern(p); err != nil {
		t.Fatal(err)
	}
	p[0] = Offset{5, 5} // mutate caller's slice
	got := g.Pattern()
	if got[0] != (Offset{0, 0}) {
		t.Fatal("SetPattern did not copy the pattern")
	}
	got[1] = Offset{9, 9}
	if g.Pattern()[1] != (Offset{1, 1}) {
		t.Fatal("Pattern did not return a copy")
	}
}

func TestMoore9AndRing4(t *testing.T) {
	g := MustNew(5, 5)
	if err := g.SetPattern(Moore9); err != nil {
		t.Fatal(err)
	}
	if got := g.SubPopulationSize(12); got != 9 {
		t.Fatalf("Moore9 size %d", got)
	}
	if err := g.SetPattern(Ring4); err != nil {
		t.Fatal(err)
	}
	nb := g.Neighborhood(12)
	if len(nb) != 4 {
		t.Fatalf("Ring4 size %d", len(nb))
	}
	for _, r := range nb {
		if r == 12 {
			t.Fatal("Ring4 must exclude center")
		}
	}
}

func TestResize(t *testing.T) {
	g := MustNew(2, 2)
	if err := g.Resize(4, 4); err != nil {
		t.Fatal(err)
	}
	if g.Size() != 16 {
		t.Fatalf("size after resize %d", g.Size())
	}
	if got := g.SubPopulationSize(5); got != 5 {
		t.Fatalf("post-resize s = %d", got)
	}
	if err := g.Resize(0, 4); err == nil {
		t.Fatal("bad resize accepted")
	}
}

func TestRenderFig1(t *testing.T) {
	g := MustNew(4, 4)
	out := g.Render(g.Rank(1, 1))
	if !strings.Contains(out, "4×4 toroidal grid") {
		t.Fatalf("missing header: %q", out)
	}
	if strings.Count(out, " C ") != 1 {
		t.Fatal("exactly one center expected")
	}
	if strings.Count(out, " N ") != 4 {
		t.Fatalf("4 neighbours expected, got %d", strings.Count(out, " N "))
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Fatalf("render has %d lines", len(lines))
	}
}

func TestConcurrentAccess(t *testing.T) {
	// Neighborhood readers racing with SetPattern/Resize writers must not
	// trip the race detector or panic.
	g := MustNew(4, 4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = g.Neighborhood(0)
				_ = g.Influence(3)
				_ = g.Size()
			}
		}()
	}
	for i := 0; i < 100; i++ {
		if err := g.SetPattern(Moore9); err != nil {
			t.Error(err)
		}
		if err := g.SetPattern(Moore5); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestNeighborhoodOutOfRangePanics(t *testing.T) {
	g := MustNew(2, 2)
	for name, f := range map[string]func(){
		"nb":  func() { g.Neighborhood(4) },
		"inf": func() { g.Influence(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
